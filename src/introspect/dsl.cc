#include "introspect/dsl.h"

#include <sstream>
#include <stdexcept>

namespace oceanstore {

namespace {

std::vector<std::string>
splitTokens(const std::string &line)
{
    std::vector<std::string> toks;
    std::istringstream is(line);
    std::string t;
    while (is >> t)
        toks.push_back(t);
    return toks;
}

[[noreturn]] void
bad(const std::string &line, const std::string &why)
{
    throw std::invalid_argument("EventHandler: " + why + " in \"" +
                                line + "\"");
}

} // namespace

EventHandler
EventHandler::parse(const std::string &program)
{
    EventHandler h;
    std::istringstream is(program);
    std::string line;
    std::size_t ops = 0;

    while (std::getline(is, line)) {
        auto toks = splitTokens(line);
        if (toks.empty() || toks[0].starts_with("#"))
            continue;
        if (++ops > maxOps)
            throw std::invalid_argument(
                "EventHandler: program exceeds op budget");

        const std::string &op = toks[0];
        if (op == "filter") {
            // filter <field> <cmp> <value>
            if (toks.size() != 4)
                bad(line, "filter needs: field cmp value");
            FilterOp f;
            f.field = toks[1];
            f.cmp = toks[2];
            if (f.cmp != "==" && f.cmp != "!=" && f.cmp != "<" &&
                f.cmp != "<=" && f.cmp != ">" && f.cmp != ">=") {
                bad(line, "unknown comparator");
            }
            if (f.field == "type") {
                if (f.cmp != "==" && f.cmp != "!=")
                    bad(line, "type only supports == and !=");
                f.isText = true;
                f.text = toks[3];
            } else {
                try {
                    f.number = std::stod(toks[3]);
                } catch (const std::exception &) {
                    bad(line, "non-numeric filter value");
                }
            }
            h.filters_.push_back(std::move(f));
        } else if (op == "avg") {
            // avg <field> window <N> as <name>
            if (toks.size() != 6 || toks[2] != "window" ||
                toks[4] != "as") {
                bad(line, "avg needs: field window N as name");
            }
            AvgOp a;
            a.field = toks[1];
            a.window = std::stoul(toks[3]);
            if (a.window == 0)
                bad(line, "zero window");
            a.name = toks[5];
            h.avgs_.push_back(std::move(a));
        } else if (op == "sum") {
            // sum <field> as <name>
            if (toks.size() != 4 || toks[2] != "as")
                bad(line, "sum needs: field as name");
            h.sums_.push_back(SumOp{toks[1], toks[3], 0.0});
        } else if (op == "count") {
            // count as <name>
            if (toks.size() != 3 || toks[1] != "as")
                bad(line, "count needs: as name");
            h.counts_.push_back(CountOp{toks[2], 0});
        } else if (op == "max" || op == "min") {
            // max <field> as <name>
            if (toks.size() != 4 || toks[2] != "as")
                bad(line, op + " needs: field as name");
            ExtremeOp e;
            e.field = toks[1];
            e.name = toks[3];
            e.isMax = (op == "max");
            h.extremes_.push_back(std::move(e));
        } else if (op == "emit") {
            // emit every <N>
            if (toks.size() != 3 || toks[1] != "every")
                bad(line, "emit needs: every N");
            EmitOp e;
            e.every = std::stoull(toks[2]);
            if (e.every == 0)
                bad(line, "emit every 0");
            h.emits_.push_back(e);
        } else {
            // Anything else — including for/while/goto — is rejected:
            // the language explicitly prohibits loops.
            bad(line, "unknown operation '" + op + "'");
        }
    }
    return h;
}

void
EventHandler::onEvent(const Event &e)
{
    for (const FilterOp &f : filters_) {
        if (f.isText) {
            bool eq = (e.type == f.text);
            if ((f.cmp == "==" && !eq) || (f.cmp == "!=" && eq))
                return;
            continue;
        }
        auto it = e.fields.find(f.field);
        if (it == e.fields.end())
            return; // missing field fails the filter
        double v = it->second;
        bool pass = (f.cmp == "==")   ? v == f.number
                    : (f.cmp == "!=") ? v != f.number
                    : (f.cmp == "<")  ? v < f.number
                    : (f.cmp == "<=") ? v <= f.number
                    : (f.cmp == ">")  ? v > f.number
                                      : v >= f.number;
        if (!pass)
            return;
    }

    matched_++;

    for (AvgOp &a : avgs_) {
        auto it = e.fields.find(a.field);
        if (it == e.fields.end())
            continue;
        a.ring.push_back(it->second);
        a.windowSum += it->second;
        if (a.ring.size() > a.window) {
            a.windowSum -= a.ring.front();
            a.ring.pop_front();
        }
    }
    for (SumOp &s : sums_) {
        auto it = e.fields.find(s.field);
        if (it != e.fields.end())
            s.total += it->second;
    }
    for (CountOp &c : counts_)
        c.n++;
    for (ExtremeOp &x : extremes_) {
        auto it = e.fields.find(x.field);
        if (it == e.fields.end())
            continue;
        if (!x.seen || (x.isMax ? it->second > x.value
                               : it->second < x.value)) {
            x.value = it->second;
            x.seen = true;
        }
    }
    for (EmitOp &em : emits_) {
        if (++em.sinceLast >= em.every) {
            em.sinceLast = 0;
            summaries_.push_back(current());
        }
    }
}

Summary
EventHandler::current() const
{
    Summary s;
    for (const AvgOp &a : avgs_) {
        s[a.name] = a.ring.empty()
                        ? 0.0
                        : a.windowSum /
                              static_cast<double>(a.ring.size());
    }
    for (const SumOp &sm : sums_)
        s[sm.name] = sm.total;
    for (const CountOp &c : counts_)
        s[c.name] = static_cast<double>(c.n);
    for (const ExtremeOp &x : extremes_)
        s[x.name] = x.seen ? x.value : 0.0;
    return s;
}

} // namespace oceanstore
