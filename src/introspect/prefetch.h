/**
 * @file
 * Introspective prefetching (Sections 4.7.2 and 5).
 *
 * The Section 5 status report: "We have implemented the introspective
 * prefetching mechanism for a local file system.  Testing showed that
 * the method correctly captured high-order correlations, even in the
 * presence of noise."  The predictor here is an order-k Markov model
 * over the object reference stream — contexts of the last k accesses
 * vote on likely successors, with shorter-context fallback, in the
 * spirit of [20, 27].
 */

#ifndef OCEANSTORE_INTROSPECT_PREFETCH_H
#define OCEANSTORE_INTROSPECT_PREFETCH_H

#include <deque>
#include <map>
#include <vector>

#include "crypto/guid.h"

namespace oceanstore {

/** Markov-context prefetcher over object accesses. */
class Prefetcher
{
  public:
    /**
     * @param order   maximum context length (k); higher orders
     *                capture the "high-order correlations" of Sec. 5
     * @param breadth predictions returned per query
     */
    explicit Prefetcher(unsigned order = 2, unsigned breadth = 2);

    /**
     * Record an access and update every context order's transition
     * counts.  O(order) per access.
     */
    void onAccess(const Guid &obj);

    /**
     * Predict the most likely next objects given the current
     * context.  Longest matching context wins; falls back to shorter
     * contexts (down to order 1) when a long context is unseen.
     */
    std::vector<Guid> predict() const;

    /** Number of contexts learned across all orders. */
    std::size_t contextsLearned() const;

    /** Convenience: was @p obj among predict() just before access? */
    bool wouldHaveHit(const Guid &obj) const;

  private:
    /** Serialized context key: concatenated GUID hashes. */
    using ContextKey = std::vector<std::uint64_t>;

    unsigned order_;
    unsigned breadth_;
    std::deque<Guid> history_;
    /** per order (1-based): context -> successor -> count. */
    std::vector<std::map<ContextKey, std::map<Guid, std::uint64_t>>>
        tables_;
};

} // namespace oceanstore

#endif // OCEANSTORE_INTROSPECT_PREFETCH_H
