/**
 * @file
 * Introspective replica management (Section 4.7.2).
 *
 * "Replica management adjusts the number and location of floating
 * replicas in order to service access requests more efficiently.
 * Event handlers monitor client requests and system load ... When
 * access requests overwhelm a replica, it forwards a request for
 * assistance to its parent node.  The parent ... can create
 * additional floating replicas on nearby nodes to alleviate load.
 * Conversely, replica management eliminates floating replicas that
 * have fallen into disuse."
 */

#ifndef OCEANSTORE_INTROSPECT_REPLICA_MGMT_H
#define OCEANSTORE_INTROSPECT_REPLICA_MGMT_H

#include <map>
#include <vector>

#include "crypto/guid.h"
#include "sim/message.h"

namespace oceanstore {

/** Per-replica load observation for one decision epoch. */
struct ReplicaLoad
{
    Guid object;
    NodeId host = invalidNode;
    std::uint64_t requests = 0; //!< Requests served this epoch.
};

/** A decision the policy wants enacted. */
struct ReplicaAction
{
    enum class Kind
    {
        Create, //!< Spawn a replica of `object` near `target`.
        Retire, //!< Remove the replica of `object` on `target`.
    };

    Kind kind;
    Guid object;
    NodeId target = invalidNode;
};

/** Tunables for the replica-management policy. */
struct ReplicaPolicyConfig
{
    /** Requests/epoch above which a replica asks for help. */
    std::uint64_t overloadThreshold = 100;
    /** Requests/epoch below which a replica is considered disused. */
    std::uint64_t disuseThreshold = 2;
    /** Never retire below this many replicas per object. */
    unsigned minReplicas = 1;
    /** Never grow beyond this many replicas per object. */
    unsigned maxReplicas = 16;
};

/**
 * The decision policy: consumes one epoch of load observations and
 * emits create/retire actions.  Pure logic, no I/O — the embedding
 * server enacts the actions (creating floating replicas and updating
 * the location mesh).
 */
class ReplicaManager
{
  public:
    explicit ReplicaManager(ReplicaPolicyConfig cfg = {});

    /**
     * Decide actions for an epoch.
     *
     * @param loads      one entry per (object, host) replica
     * @param candidates nodes eligible to host new replicas, ranked
     *                   nearest-first for each overloaded replica by
     *                   the caller
     */
    std::vector<ReplicaAction>
    decide(const std::vector<ReplicaLoad> &loads,
           const std::map<NodeId, std::vector<NodeId>> &candidates)
        const;

    /** The policy configuration. */
    const ReplicaPolicyConfig &config() const { return cfg_; }

  private:
    ReplicaPolicyConfig cfg_;
};

} // namespace oceanstore

#endif // OCEANSTORE_INTROSPECT_REPLICA_MGMT_H
