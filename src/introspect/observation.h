/**
 * @file
 * The introspective observation hierarchy (Section 4.7.1, Figure 8).
 *
 * "Fast event handlers summarize and respond to local events ...
 * summaries are stored in a local database [which] may be only soft
 * state ... a third level of each node forwards an appropriate
 * summary of its knowledge to a parent node for further processing on
 * the wider scale."
 */

#ifndef OCEANSTORE_INTROSPECT_OBSERVATION_H
#define OCEANSTORE_INTROSPECT_OBSERVATION_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "introspect/dsl.h"

namespace oceanstore {

/**
 * A node's soft-state observation database: named summary slots with
 * merge-on-write aggregation.
 */
class ObservationDb
{
  public:
    /** How two values for the same key combine. */
    enum class Merge { Replace, Sum, Max, Min };

    /** Write (or merge) a value. */
    void record(const std::string &key, double value,
                Merge merge = Merge::Replace);

    /** Read a value (0 when absent). */
    double get(const std::string &key) const;

    /** True when the key exists. */
    bool has(const std::string &key) const;

    /** Merge every key of a Summary using @p merge. */
    void absorb(const Summary &s, Merge merge = Merge::Sum);

    /** Snapshot of everything (for forwarding upward). */
    Summary snapshot() const;

    /** Soft state: drop everything (e.g. on reboot). */
    void clear() { values_.clear(); }

  private:
    std::map<std::string, double> values_;
};

/**
 * One level of the introspection hierarchy: local event handlers
 * feeding a soft-state database, periodic in-depth analysis hooks,
 * and summary forwarding to a parent node.
 */
class IntrospectionNode
{
  public:
    explicit IntrospectionNode(std::string name);

    /** Attach a compiled event handler. */
    void addHandler(EventHandler handler);

    /** Feed a local event to every handler; drains emitted summaries
     *  into the database. */
    void onEvent(const Event &e);

    /** The node's database. */
    ObservationDb &db() { return db_; }

    /** Set the parent this node forwards summaries to. */
    void setParent(IntrospectionNode *parent) { parent_ = parent; }

    /**
     * Run the periodic analysis: invoke registered analyzers over
     * the database, then forward a snapshot to the parent (which
     * absorbs it with Sum merging).
     */
    void analyzeAndForward();

    /** Register an in-depth analysis pass run by analyzeAndForward. */
    void addAnalyzer(std::function<void(ObservationDb &)> fn);

    /**
     * How a forwarded key merges at the parent (default Sum; use Max
     * for peaks, Min for minima, Replace for gauges).
     */
    void setForwardMerge(const std::string &key,
                         ObservationDb::Merge merge);

    /** Node name (diagnostics). */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<EventHandler> handlers_;
    std::vector<std::function<void(ObservationDb &)>> analyzers_;
    ObservationDb db_;
    IntrospectionNode *parent_ = nullptr;
    std::map<std::string, ObservationDb::Merge> forwardMerge_;
};

} // namespace oceanstore

#endif // OCEANSTORE_INTROSPECT_OBSERVATION_H
