/**
 * @file
 * Trace and metrics exporters (observability layer).
 *
 * Two serializations of a Tracer's span buffer:
 *
 *  - JSONL: one span object per line, the stable format consumed by
 *    `tools/tracecat` (critical paths, hop histograms, retry trees)
 *    and by the chaos suite's failing-seed dumps.  Rendering is
 *    deterministic — fixed field order, fixed number formatting — so
 *    two runs of the same seed produce byte-identical dumps (the
 *    determinism sweep asserts this).
 *
 *  - Chrome trace_event JSON: loadable in chrome://tracing or Perfetto
 *    for a visual timeline; sim-seconds are mapped to microseconds,
 *    traces to pids and nodes to tids.
 *
 * These are the only files under src/ permitted to perform ad-hoc
 * output (the lint `adhoc-print` rule exempts obs/export*); all other
 * code reports through the logger, metrics or spans.
 */

#ifndef OCEANSTORE_OBS_EXPORT_H
#define OCEANSTORE_OBS_EXPORT_H

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace oceanstore {

/** Write every span as one JSON object per line (JSONL). */
void writeSpansJsonl(const Tracer &tracer, std::ostream &out);

/**
 * Write an explicit span list (e.g. a flight-recorder snapshot) as
 * JSONL, resolving interned strings through @p tracer.  Same line
 * format as writeSpansJsonl(tracer, out).
 */
void writeSpansJsonl(const Tracer &tracer,
                     const std::vector<SpanRecord> &spans,
                     std::ostream &out);

/** Write the Chrome trace_event format (a JSON array of complete
 *  "X" events). */
void writeChromeTrace(const Tracer &tracer, std::ostream &out);

/** writeSpansJsonl to a file; false on I/O failure. */
bool dumpSpansJsonl(const Tracer &tracer, const std::string &path);

/** writeChromeTrace to a file; false on I/O failure. */
bool dumpChromeTrace(const Tracer &tracer, const std::string &path);

} // namespace oceanstore

#endif // OCEANSTORE_OBS_EXPORT_H
