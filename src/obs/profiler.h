/**
 * @file
 * Sim-time latency-phase profiler (observability layer).
 *
 * Figures 5 and 6 of the paper decompose update latency into phases
 * (serialize -> route -> agree -> disseminate).  This profiler
 * reproduces that decomposition by attributing event-loop activity to
 * *component labels*: the network labels each delivery event with the
 * component prefix of the message type ("pbft", "sec", "loc", ...),
 * timers inherit the ambient label of the code that armed them, and
 * the simulator reports every fired event to the active profiler
 * along with its scheduling delay (fire time minus schedule time —
 * the simulated latency the event spent in flight or pending).
 *
 * Everything is simulated time and event counts — never wall-clock —
 * so the profiler obeys the determinism contract: two runs of the
 * same seed produce identical phase tables.  Like the Tracer, the
 * profiler is ambient (ProfileScope installs it) and costs one null
 * check per event when detached.
 */

#ifndef OCEANSTORE_OBS_PROFILER_H
#define OCEANSTORE_OBS_PROFILER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace oceanstore {

/**
 * Per-label accounting of fired events.  Label 0 is reserved for
 * unattributed events ("(unlabeled)").
 */
class PhaseProfiler
{
  public:
    using Label = std::uint16_t;

    PhaseProfiler();
    PhaseProfiler(const PhaseProfiler &) = delete;
    PhaseProfiler &operator=(const PhaseProfiler &) = delete;

    /** The process-wide active profiler, or nullptr when detached. */
    static PhaseProfiler *active() { return active_; }

    /** Intern a phase label (deterministic first-use order). */
    Label intern(const std::string &name);

    /**
     * Label for a dotted message type: the prefix before the first
     * '.' ("pbft.prepare" -> "pbft").  Memoized per full type string
     * so the network hot path does one map lookup, no allocation.
     */
    Label labelForMessageType(const std::string &type);

    /** Ambient label inherited by events scheduled right now. */
    Label currentLabel() const { return current_; }
    void setCurrent(Label label) { current_ = label; }

    /** Called by the simulator for every fired event: @p sim_delay is
     *  fire time minus schedule time (simulated seconds). */
    void
    onEventFired(Label label, double sim_delay)
    {
        Bucket &b = buckets_[label];
        b.events++;
        b.simDelay += sim_delay;
    }

    /** One phase row of the breakdown. */
    struct PhaseStats
    {
        std::string name;
        std::uint64_t events = 0; //!< Events attributed to the phase.
        double simDelay = 0.0;    //!< Summed schedule->fire latency.
    };

    /** Snapshot of every non-empty phase, sorted by name. */
    std::vector<PhaseStats> stats() const;

    /** Total events seen (all labels). */
    std::uint64_t totalEvents() const;

    /** Zero all buckets, keeping label registrations. */
    void clear();

  private:
    friend class ProfileScope;

    struct Bucket
    {
        std::uint64_t events = 0;
        double simDelay = 0.0;
    };

    static PhaseProfiler *active_;

    Label current_ = 0;
    std::vector<Bucket> buckets_;
    std::vector<std::string> labelNames_;
    std::map<std::string, Label> labelTable_; //!< name -> label
    std::map<std::string, Label> typeCache_;  //!< full type -> label
};

/** RAII installation of a profiler as the active instance. */
class ProfileScope
{
  public:
    explicit ProfileScope(PhaseProfiler &profiler)
        : prev_(PhaseProfiler::active_)
    {
        PhaseProfiler::active_ = &profiler;
    }

    ~ProfileScope() { PhaseProfiler::active_ = prev_; }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    PhaseProfiler *prev_;
};

/** RAII ambient-label override (restores the previous label). */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseProfiler *profiler, PhaseProfiler::Label label)
        : profiler_(profiler)
    {
        if (profiler_) {
            prev_ = profiler_->currentLabel();
            profiler_->setCurrent(label);
        }
    }

    ~ScopedPhase()
    {
        if (profiler_)
            profiler_->setCurrent(prev_);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseProfiler *profiler_;
    PhaseProfiler::Label prev_ = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_PROFILER_H
