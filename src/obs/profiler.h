/**
 * @file
 * Latency-phase profiler (observability layer).
 *
 * Figures 5 and 6 of the paper decompose update latency into phases
 * (serialize -> route -> agree -> disseminate).  This profiler
 * reproduces that decomposition by attributing event-loop activity to
 * *component labels*: the network labels each delivery event with the
 * component prefix of the message type ("pbft", "sec", "loc", ...),
 * timers inherit the ambient label of the code that armed them, and
 * the runtime reports every fired event to the active profiler along
 * with its scheduling delay (fire time minus schedule time — the
 * latency the event spent in flight or pending).
 *
 * Delays are read from the *Runtime clock*: simulated seconds on the
 * sim backend (deterministic — two runs of the same seed produce
 * identical phase tables, asserted by the determinism sweep), wall
 * seconds on the threaded backend (where a phase table is a real
 * latency breakdown of a live cluster).  Like the Tracer, the
 * profiler is ambient (ProfileScope installs it) and costs one null
 * check per event when detached.
 *
 * Thread contract: buckets are fixed-capacity relaxed atomics, so
 * onEventFired() is lock-free from any ThreadedRuntime worker; the
 * ambient label is thread-local; interning takes a (no-op until
 * OCEANSTORE_THREADED) mutex.
 */

#ifndef OCEANSTORE_OBS_PROFILER_H
#define OCEANSTORE_OBS_PROFILER_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace oceanstore {

/**
 * Per-label accounting of fired events.  Label 0 is reserved for
 * unattributed events ("(unlabeled)").
 */
class PhaseProfiler
{
  public:
    using Label = std::uint16_t;

    /** Fixed label capacity: ids index the atomic bucket array, which
     *  must never reallocate under concurrent onEventFired(). */
    static constexpr std::size_t kMaxLabels = 512;

    PhaseProfiler();
    PhaseProfiler(const PhaseProfiler &) = delete;
    PhaseProfiler &operator=(const PhaseProfiler &) = delete;

    /** The process-wide active profiler, or nullptr when detached. */
    static PhaseProfiler *
    active()
    {
        return active_.load(std::memory_order_acquire);
    }

    /** Intern a phase label (deterministic first-use order). */
    Label intern(const std::string &name) OS_EXCLUDES(mu_);

    /**
     * Label for a dotted message type: the prefix before the first
     * '.' ("pbft.prepare" -> "pbft").  Memoized per full type string
     * so the network hot path does one map lookup, no allocation.
     */
    Label labelForMessageType(const std::string &type)
        OS_EXCLUDES(mu_);

    /** Ambient label (of the calling thread) inherited by events
     *  scheduled right now. */
    Label currentLabel() const;
    void setCurrent(Label label);

    /** Called by the runtime for every fired event: @p delay is fire
     *  time minus schedule time, in Runtime-clock seconds (simulated
     *  on the sim backend, wall on the threaded backend). */
    void
    onEventFired(Label label, double delay)
    {
        Bucket &b = buckets_[label];
        b.events.fetch_add(1, std::memory_order_relaxed);
        b.delay.fetch_add(delay, std::memory_order_relaxed);
    }

    /** One phase row of the breakdown. */
    struct PhaseStats
    {
        std::string name;
        std::uint64_t events = 0; //!< Events attributed to the phase.
        double delay = 0.0;       //!< Summed schedule->fire latency
                                  //!< (Runtime-clock seconds).
    };

    /** Snapshot of every non-empty phase, sorted by name. */
    std::vector<PhaseStats> stats() const OS_EXCLUDES(mu_);

    /** Total events seen (all labels). */
    std::uint64_t totalEvents() const OS_EXCLUDES(mu_);

    /** Zero all buckets, keeping label registrations; resets the
     *  calling thread's ambient label. */
    void clear() OS_EXCLUDES(mu_);

  private:
    friend class ProfileScope;

    struct Bucket
    {
        std::atomic<std::uint64_t> events{0};
        std::atomic<double> delay{0.0};
    };

    static std::atomic<PhaseProfiler *> active_;

    /** Guards label registration; no-op until OCEANSTORE_THREADED. */
    mutable Mutex mu_;

    /** Fixed-capacity so ids stay valid without a lock. */
    std::array<Bucket, kMaxLabels> buckets_;

    std::vector<std::string> labelNames_ OS_GUARDED_BY(mu_);
    std::map<std::string, Label> labelTable_
        OS_GUARDED_BY(mu_); //!< name -> label
    std::map<std::string, Label> typeCache_
        OS_GUARDED_BY(mu_); //!< full type -> label
};

/** RAII installation of a profiler as the active instance. */
class ProfileScope
{
  public:
    explicit ProfileScope(PhaseProfiler &profiler)
        : prev_(PhaseProfiler::active_.exchange(
              &profiler, std::memory_order_acq_rel))
    {
    }

    ~ProfileScope()
    {
        PhaseProfiler::active_.store(prev_,
                                     std::memory_order_release);
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    PhaseProfiler *prev_;
};

/** RAII ambient-label override (restores the previous label). */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseProfiler *profiler, PhaseProfiler::Label label)
        : profiler_(profiler)
    {
        if (profiler_) {
            prev_ = profiler_->currentLabel();
            profiler_->setCurrent(label);
        }
    }

    ~ScopedPhase()
    {
        if (profiler_)
            profiler_->setCurrent(prev_);
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    PhaseProfiler *profiler_;
    PhaseProfiler::Label prev_ = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_PROFILER_H
