/**
 * @file
 * Causal message tracing (observability layer).
 *
 * The paper's quantitative claims are about message counts, hop
 * counts and latency phases (Figures 2-6, Section 4); its
 * introspection architecture (Section 4.7) argues the system should
 * observe itself.  This header provides the mechanism: a TraceContext
 * (trace id + span id + hop count) rides inside every sim::Message
 * and every scheduled event, so each protocol action can be linked to
 * the action that caused it, across the network and across timers.
 *
 * Span records are appended to a per-run pooled TraceBuffer owned by
 * a Tracer.  Tracing is *ambient*: protocol code never threads a
 * tracer through its call graph.  A TraceScope installs a Tracer as
 * the process-wide active instance; when none is installed, every
 * hook in the hot paths costs exactly one null-pointer check
 * (mirroring the fault-injector contract from DESIGN.md section 10).
 *
 * Determinism: tracing only *observes*.  It consumes no randomness,
 * schedules no events and never branches protocol behaviour, so a
 * traced run replays bit-for-bit against an untraced one, and two
 * traced runs of the same seed produce byte-identical span dumps
 * (asserted by the determinism sweep).
 */

#ifndef OCEANSTORE_OBS_TRACE_H
#define OCEANSTORE_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace oceanstore {

/**
 * Causal position of a message or event: which trace it belongs to,
 * which span caused it, and how many causal hops lie between it and
 * the trace root.  Plain POD so sim::Message and simulator slots can
 * embed it by value; the zero value means "untraced".
 */
struct TraceContext
{
    std::uint64_t traceId = 0; //!< 0 = no active trace.
    std::uint32_t spanId = 0;  //!< Span that is the causal parent.
    std::uint32_t hop = 0;     //!< Causal hops from the trace root.

    /** True when this context belongs to a live trace. */
    bool valid() const { return traceId != 0; }
};

/** What kind of action a span records. */
enum class SpanKind : std::uint8_t
{
    Local = 0,     //!< In-process action (handler, API call, timer).
    Send = 1,      //!< Unicast network transmission.
    Multicast = 2, //!< Fan-out transmission (one span per multicast).
};

/** Outcome of the action the span records. */
enum class SpanStatus : std::uint8_t
{
    Ok = 0,      //!< Completed / delivered (absent node-down at arrival).
    Dropped = 1, //!< Lost in transit (crash, drop rate, fault injector).
};

/**
 * One recorded span.  Component and name are interned string ids
 * (resolve via Tracer::internedString) so the hot path never copies
 * strings; times are simulated seconds.
 */
struct SpanRecord
{
    std::uint64_t traceId = 0;
    std::uint32_t spanId = 0;  //!< 1-based; == index in the buffer + 1.
    std::uint32_t parent = 0;  //!< Parent span id, 0 for a trace root.
    std::uint32_t component = 0; //!< Interned component label.
    std::uint32_t name = 0;      //!< Interned span name (message type).
    std::uint32_t node = ~0u;    //!< Acting / sending node.
    std::uint32_t peer = ~0u;    //!< Destination node; fan-out count
                                 //!< for multicast spans.
    std::uint32_t hop = 0;       //!< Causal hops from the trace root.
    std::uint32_t bytes = 0;     //!< Wire bytes (send spans).
    double start = 0.0;          //!< Sim-time the action began.
    double end = 0.0;            //!< Sim-time it completed/delivers.
    SpanKind kind = SpanKind::Local;
    SpanStatus status = SpanStatus::Ok;
};

/**
 * Per-run pooled span storage.  clear() drops records but keeps the
 * allocation, so repeated scenario runs (chaos seeds, bench repeats)
 * reuse one buffer.
 *
 * Thread contract (Runtime-seam prep): the record vector is guarded
 * by mu_ — a no-op lock in the sim build, statically checked by the
 * clang -Wthread-safety configuration.  References handed out by
 * at() stay single-writer by the Tracer's own contract (exactly one
 * active Tracer, mutated only from the simulation thread).
 */
class TraceBuffer
{
  public:
    /** Append and return the new record's 1-based span id. */
    std::uint32_t
    append(const SpanRecord &rec) OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        records_.push_back(rec);
        return static_cast<std::uint32_t>(records_.size());
    }

    /** Mutable access by span id (1-based), e.g. to extend a
     *  multicast span's end time as fan-out legs are scheduled. */
    SpanRecord &
    at(std::uint32_t span_id) OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return records_[span_id - 1];
    }

    const std::vector<SpanRecord> &
    records() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return records_;
    }

    std::size_t
    size() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return records_.size();
    }

    bool
    empty() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return records_.empty();
    }

    /** Drop all records, retaining capacity. */
    void
    clear() OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        records_.clear();
    }

    void
    reserve(std::size_t n) OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        records_.reserve(n);
    }

  private:
    /** Guards records_; no-op until OCEANSTORE_THREADED. */
    mutable Mutex mu_;

    std::vector<SpanRecord> records_ OS_GUARDED_BY(mu_);
};

/**
 * The tracing engine: interns strings, allocates trace/span ids,
 * tracks the ambient causal context, and owns the TraceBuffer.
 *
 * Exactly one Tracer may be active at a time (see TraceScope); the
 * simulator and network consult Tracer::active() on their hot paths.
 */
class Tracer
{
  public:
    Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide active tracer, or nullptr when tracing is
     *  detached (the common, zero-cost case). */
    static Tracer *active() { return active_; }

    /** Ambient causal context (the span "we are inside of"). */
    const TraceContext &current() const { return current_; }

    /** Install / clear the ambient context.  Used by the simulator
     *  when firing an event and by the network when delivering. */
    void setCurrent(const TraceContext &ctx) { current_ = ctx; }
    void clearCurrent() { current_ = TraceContext{}; }

    /** Intern a string, returning a stable dense id (deterministic:
     *  first-use order). */
    std::uint32_t intern(const std::string &s);

    /** Resolve an interned id back to its string. */
    const std::string &internedString(std::uint32_t id) const;

    /**
     * Open a local span (handler body, API entry, timer action) as a
     * child of the ambient context — or as the root of a fresh trace
     * when none is ambient — and make it the new ambient context.
     * Balance with endLocalSpan().  @return the span id.
     */
    std::uint32_t beginLocalSpan(const std::string &component,
                                 const std::string &name, double now,
                                 std::uint32_t node = ~0u);

    /** Close a local span: stamp its end time and restore the
     *  ambient context that beginLocalSpan() displaced. */
    void endLocalSpan(std::uint32_t span_id, double now);

    /**
     * Record a message transmission as a child of the ambient
     * context (or as a fresh trace root when none is ambient).
     * Does *not* change the ambient context.
     *
     * @param name    message type, e.g. "pbft.prepare"
     * @param peer    destination node; fan-out size for multicast
     * @param start   send sim-time
     * @param end     scheduled delivery sim-time (== start if dropped)
     * @return the context to stamp into the message, carrying this
     *         span as the causal parent of everything the receiver
     *         does.
     */
    TraceContext messageSpan(const std::string &name,
                             std::uint32_t node, std::uint32_t peer,
                             std::uint32_t bytes, double start,
                             double end, SpanKind kind,
                             SpanStatus status);

    /** Extend a span's end time (multicast legs, retransmissions). */
    void
    setSpanEnd(std::uint32_t span_id, double end)
    {
        SpanRecord &r = buffer_.at(span_id);
        if (end > r.end)
            r.end = end;
    }

    /** The span storage. */
    const TraceBuffer &buffer() const { return buffer_; }

    /** Interned strings in id order (id i -> strings()[i]). */
    const std::vector<std::string> &strings() const { return strings_; }

    /** Drop all spans and reset ids; interned strings survive so
     *  repeated runs keep identical id assignments only if they
     *  intern in the same order — which clear() guarantees by
     *  resetting the table too. */
    void clear();

  private:
    friend class TraceScope;

    static Tracer *active_;

    std::uint32_t newSpan(const std::string &component,
                          const std::string &name, std::uint32_t node,
                          std::uint32_t peer, std::uint32_t bytes,
                          double start, double end, SpanKind kind,
                          SpanStatus status);

    TraceBuffer buffer_;
    TraceContext current_;
    std::vector<TraceContext> scopeStack_;
    std::map<std::string, std::uint32_t> internTable_;
    std::vector<std::string> strings_;
    std::uint64_t nextTraceId_ = 1;
};

/**
 * RAII installation of a Tracer as the process-wide active instance.
 * Scopes nest (the previous active tracer is restored on
 * destruction), though in practice one per run is the norm.
 */
class TraceScope
{
  public:
    explicit TraceScope(Tracer &tracer)
        : prev_(Tracer::active_)
    {
        Tracer::active_ = &tracer;
    }

    ~TraceScope() { Tracer::active_ = prev_; }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Tracer *prev_;
};

/**
 * RAII local span: opens on construction when a tracer is active,
 * closes (with the supplied clock reading) on end().  For code that
 * cannot conveniently read the clock in a destructor, call end()
 * explicitly; the destructor closes at the start time otherwise.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const std::string &component, const std::string &name,
               double now, std::uint32_t node = ~0u)
        : tracer_(Tracer::active()), start_(now)
    {
        if (tracer_)
            span_ = tracer_->beginLocalSpan(component, name, now, node);
    }

    /** Close the span at sim-time @p now (idempotent). */
    void
    end(double now)
    {
        if (tracer_ && span_) {
            tracer_->endLocalSpan(span_, now);
            span_ = 0;
        }
    }

    ~ScopedSpan() { end(start_); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer_;
    double start_;
    std::uint32_t span_ = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_TRACE_H
