/**
 * @file
 * Causal message tracing (observability layer).
 *
 * The paper's quantitative claims are about message counts, hop
 * counts and latency phases (Figures 2-6, Section 4); its
 * introspection architecture (Section 4.7) argues the system should
 * observe itself.  This header provides the mechanism: a TraceContext
 * (trace id + span id + hop count) rides inside every sim::Message
 * and every scheduled event, so each protocol action can be linked to
 * the action that caused it, across the network and across timers.
 *
 * Span records are appended to a TraceBuffer owned by a Tracer.
 * Tracing is *ambient*: protocol code never threads a tracer through
 * its call graph.  A TraceScope installs a Tracer as the process-wide
 * active instance; when none is installed, every hook in the hot
 * paths costs exactly one null-pointer check (mirroring the
 * fault-injector contract from DESIGN.md section 10).
 *
 * Thread contract: the buffer is sharded into per-thread arenas, so
 * concurrent appends from ThreadedRuntime workers never contend on a
 * shared lock; span ids come from one atomic counter, giving a total
 * allocation order that snapshot() uses as its deterministic merge
 * key.  The ambient context is thread-local — each worker carries its
 * own causal position, installed around each strand callback.
 *
 * Determinism: tracing only *observes*.  It consumes no randomness,
 * schedules no events and never branches protocol behaviour, so a
 * traced run replays bit-for-bit against an untraced one.  On the
 * single-threaded sim backend span ids are allocated sequentially,
 * so snapshot() is exactly append order and two traced runs of the
 * same seed produce byte-identical span dumps (asserted by the
 * determinism sweep).
 */

#ifndef OCEANSTORE_OBS_TRACE_H
#define OCEANSTORE_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace oceanstore {

/**
 * Causal position of a message or event: which trace it belongs to,
 * which span caused it, and how many causal hops lie between it and
 * the trace root.  Plain POD so sim::Message and simulator slots can
 * embed it by value; the zero value means "untraced".
 */
struct TraceContext
{
    std::uint64_t traceId = 0; //!< 0 = no active trace.
    std::uint32_t spanId = 0;  //!< Span that is the causal parent.
    std::uint32_t hop = 0;     //!< Causal hops from the trace root.

    /** True when this context belongs to a live trace. */
    bool valid() const { return traceId != 0; }
};

/** What kind of action a span records. */
enum class SpanKind : std::uint8_t
{
    Local = 0,     //!< In-process action (handler, API call, timer).
    Send = 1,      //!< Unicast network transmission.
    Multicast = 2, //!< Fan-out transmission (one span per multicast).
};

/** Outcome of the action the span records. */
enum class SpanStatus : std::uint8_t
{
    Ok = 0,      //!< Completed / delivered (absent node-down at arrival).
    Dropped = 1, //!< Lost in transit (crash, drop rate, fault injector).
};

/**
 * One recorded span.  Component and name are interned string ids
 * (resolve via Tracer::internedString) so the hot path never copies
 * strings; times are Runtime clock seconds (simulated on the sim
 * backend, wall-clock since start on the threaded backend).
 */
struct SpanRecord
{
    std::uint64_t traceId = 0;
    std::uint32_t spanId = 0;  //!< 1-based global allocation sequence;
                               //!< the deterministic merge order.
    std::uint32_t parent = 0;  //!< Parent span id, 0 for a trace root.
    std::uint32_t component = 0; //!< Interned component label.
    std::uint32_t name = 0;      //!< Interned span name (message type).
    std::uint32_t node = ~0u;    //!< Acting / sending node.
    std::uint32_t peer = ~0u;    //!< Destination node; fan-out count
                                 //!< for multicast spans.
    std::uint32_t hop = 0;       //!< Causal hops from the trace root.
    std::uint32_t bytes = 0;     //!< Wire bytes (send spans).
    double start = 0.0;          //!< Clock reading the action began.
    double end = 0.0;            //!< Clock reading it completes/delivers.
    SpanKind kind = SpanKind::Local;
    SpanStatus status = SpanStatus::Ok;
};

/**
 * Per-run span storage, sharded into per-thread arenas.
 *
 * Each appending thread gets its own arena (created lazily, cached
 * thread-locally), so appends from concurrent ThreadedRuntime workers
 * take only the arena's own lock — which a single writer never
 * contends on.  Span ids are drawn from one atomic counter shared by
 * all arenas; because each arena's appends are serialized, ids are
 * strictly ascending *within* an arena, and snapshot() merges the
 * arenas back into the global allocation order by sorting on span id.
 *
 * clear() drops records but keeps the arenas (threads hold cached
 * pointers to them), so repeated scenario runs (chaos seeds, bench
 * repeats) reuse the allocation.
 */
class TraceBuffer
{
  public:
    TraceBuffer();

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** Stamp @p rec with the next span id (1-based, globally
     *  ordered), append it to the calling thread's arena, and return
     *  the id. */
    std::uint32_t append(SpanRecord &rec) OS_EXCLUDES(arenasMu_);

    /** Extend a span's end time (monotone max), e.g. as multicast
     *  fan-out legs are scheduled. */
    void setEnd(std::uint32_t span_id, double end)
        OS_EXCLUDES(arenasMu_);

    /**
     * Deterministic merged copy of every arena, sorted by span id —
     * i.e. global allocation order, which on the single-threaded sim
     * backend is exactly append order.
     */
    std::vector<SpanRecord> snapshot() const OS_EXCLUDES(arenasMu_);

    /** Total records across all arenas. */
    std::size_t size() const OS_EXCLUDES(arenasMu_);

    bool empty() const { return size() == 0; }

    /** Drop all records and reset the span-id sequence, retaining
     *  arena allocations.  Quiescent-only (no concurrent appends). */
    void clear() OS_EXCLUDES(arenasMu_);

    /** Reserve capacity in the calling thread's arena. */
    void reserve(std::size_t n) OS_EXCLUDES(arenasMu_);

  private:
    struct Arena
    {
        /** Guards records; no-op until OCEANSTORE_THREADED. */
        mutable Mutex mu;
        std::vector<SpanRecord> records OS_GUARDED_BY(mu);
    };

    /** The calling thread's arena, created on first use.  The result
     *  is cached thread-locally keyed by bufferId_, so the hot path
     *  takes no buffer-wide lock. */
    Arena &arenaForThisThread() const OS_EXCLUDES(arenasMu_);

    /** Process-unique id of this buffer instance (never reused), the
     *  thread-local arena-cache key. */
    const std::uint64_t bufferId_;

    /** Next span id to hand out; 1-based. */
    std::atomic<std::uint32_t> nextSpanId_{1};

    /** Guards the arena list; no-op until OCEANSTORE_THREADED. */
    mutable Mutex arenasMu_;

    mutable std::vector<std::unique_ptr<Arena>> arenas_
        OS_GUARDED_BY(arenasMu_);
};

/**
 * The tracing engine: interns strings, allocates trace/span ids,
 * tracks the ambient causal context, and owns the TraceBuffer.
 *
 * Exactly one Tracer may be active at a time (see TraceScope); the
 * simulator, network and threaded runtime consult Tracer::active()
 * on their hot paths.  The ambient context is *per thread* (each
 * ThreadedRuntime worker carries its own causal position); on the
 * single-threaded sim backend that is indistinguishable from the
 * old process-wide context.
 */
class Tracer
{
  public:
    Tracer() = default;

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide active tracer, or nullptr when tracing is
     *  detached (the common, zero-cost case). */
    static Tracer *
    active()
    {
        return active_.load(std::memory_order_acquire);
    }

    /** Ambient causal context of the calling thread (the span "we
     *  are inside of"). */
    const TraceContext &current() const;

    /** Install / clear the calling thread's ambient context.  Used
     *  by the simulator when firing an event, by the network when
     *  delivering, and by ThreadedRuntime around strand callbacks. */
    void setCurrent(const TraceContext &ctx);
    void clearCurrent();

    /** Intern a string, returning a stable dense id (deterministic:
     *  first-use order). */
    std::uint32_t intern(const std::string &s) OS_EXCLUDES(internMu_);

    /** Resolve an interned id back to its string.  The reference is
     *  stable for the life of the tracer (deque storage). */
    const std::string &internedString(std::uint32_t id) const
        OS_EXCLUDES(internMu_);

    /**
     * Open a local span (handler body, API entry, timer action) as a
     * child of the ambient context — or as the root of a fresh trace
     * when none is ambient — and make it the new ambient context.
     * Balance with endLocalSpan().  @return the span id.
     */
    std::uint32_t beginLocalSpan(const std::string &component,
                                 const std::string &name, double now,
                                 std::uint32_t node = ~0u);

    /** Close a local span: stamp its end time and restore the
     *  ambient context that beginLocalSpan() displaced. */
    void endLocalSpan(std::uint32_t span_id, double now);

    /**
     * Record a message transmission as a child of the ambient
     * context (or as a fresh trace root when none is ambient).
     * Does *not* change the ambient context.
     *
     * @param name    message type, e.g. "pbft.prepare"
     * @param peer    destination node; fan-out size for multicast
     * @param start   send time
     * @param end     scheduled delivery time (== start if dropped)
     * @return the context to stamp into the message, carrying this
     *         span as the causal parent of everything the receiver
     *         does.
     */
    TraceContext messageSpan(const std::string &name,
                             std::uint32_t node, std::uint32_t peer,
                             std::uint32_t bytes, double start,
                             double end, SpanKind kind,
                             SpanStatus status);

    /** Extend a span's end time (multicast legs, retransmissions). */
    void
    setSpanEnd(std::uint32_t span_id, double end)
    {
        buffer_.setEnd(span_id, end);
    }

    /** The span storage. */
    const TraceBuffer &buffer() const { return buffer_; }

    /** Copy of the interned strings in id order
     *  (id i -> strings()[i]). */
    std::vector<std::string> strings() const OS_EXCLUDES(internMu_);

    /** Drop all spans and reset ids; the intern table resets too, so
     *  repeated runs re-intern in the same order and keep identical
     *  id assignments.  Also resets the calling thread's ambient
     *  context.  Quiescent-only. */
    void clear();

  private:
    friend class TraceScope;

    static std::atomic<Tracer *> active_;

    /** Create + append a span as a child of the calling thread's
     *  ambient context, returning the full record (spanId stamped). */
    SpanRecord newSpan(const std::string &component,
                       const std::string &name, std::uint32_t node,
                       std::uint32_t peer, std::uint32_t bytes,
                       double start, double end, SpanKind kind,
                       SpanStatus status);

    TraceBuffer buffer_;

    /** Guards the intern table; no-op until OCEANSTORE_THREADED. */
    mutable Mutex internMu_;

    std::map<std::string, std::uint32_t> internTable_
        OS_GUARDED_BY(internMu_);
    /** Deque: references stay stable across interning, so
     *  internedString() can hand them out past the lock. */
    std::deque<std::string> strings_ OS_GUARDED_BY(internMu_);

    std::atomic<std::uint64_t> nextTraceId_{1};
};

/**
 * RAII installation of a Tracer as the process-wide active instance.
 * Scopes nest (the previous active tracer is restored on
 * destruction), though in practice one per run is the norm.
 */
class TraceScope
{
  public:
    explicit TraceScope(Tracer &tracer)
        : prev_(Tracer::active_.exchange(&tracer,
                                         std::memory_order_acq_rel))
    {
    }

    ~TraceScope() { Tracer::active_.store(prev_, std::memory_order_release); }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    Tracer *prev_;
};

/**
 * RAII local span: opens on construction when a tracer is active,
 * closes (with the supplied clock reading) on end().  For code that
 * cannot conveniently read the clock in a destructor, call end()
 * explicitly; the destructor closes at the start time otherwise.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const std::string &component, const std::string &name,
               double now, std::uint32_t node = ~0u)
        : tracer_(Tracer::active()), start_(now)
    {
        if (tracer_)
            span_ = tracer_->beginLocalSpan(component, name, now, node);
    }

    /** Close the span at time @p now (idempotent). */
    void
    end(double now)
    {
        if (tracer_ && span_) {
            tracer_->endLocalSpan(span_, now);
            span_ = 0;
        }
    }

    ~ScopedSpan() { end(start_); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer_;
    double start_;
    std::uint32_t span_ = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_TRACE_H
