/**
 * @file
 * Process-wide metrics registry (observability layer).
 *
 * Named counters, gauges and histograms with interned ids: a
 * subsystem registers each metric once (string lookup, O(log n)) and
 * thereafter increments through a dense integer id — a single
 * relaxed atomic add on the hot path, cheap enough to stay always-on
 * in the simulator event loop and race-free under ThreadedRuntime
 * workers.  Names follow the `component.event` scheme (DESIGN.md
 * section 11): `sim.events_fired`, `net.drops`, `pbft.view_changes`,
 * `plaxton.lookup_hops`, ...
 *
 * Snapshots are value copies keyed by name (sorted, so the JSON
 * rendering is deterministic); deltaFrom() subtracts a "before"
 * snapshot to isolate one bench repeat or one chaos seed.  The bench
 * runner embeds such deltas next to p50/p95 in its JSON output.
 *
 * The registry is process-wide (MetricsRegistry::global()) because
 * metric identity is program-wide: two scenarios bumping
 * `net.sends` mean the same thing.  Tests that need isolation take
 * a snapshot before and diff after.
 *
 * Thread contract (DESIGN.md section 12): values live in
 * fixed-capacity arrays of atomics, so the hot-path inc()/set()/
 * observe() are lock-free relaxed operations — no mutex, no
 * reallocation, valid from any thread.  Registration and the name
 * maps stay behind mu_; handing an id from the registering thread to
 * an updating thread is the caller's synchronization point.
 * Snapshots use relaxed loads: each value is exact, cross-metric
 * tearing is possible mid-run and absent when quiescent.
 */

#ifndef OCEANSTORE_OBS_METRICS_H
#define OCEANSTORE_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace oceanstore {

/**
 * Value-copy of every registered metric, keyed by name.  Maps keep
 * the keys sorted, making snapshot rendering deterministic.
 */
struct MetricsSnapshot
{
    /** Fixed-bucket histogram contents. */
    struct Hist
    {
        double lo = 0.0;
        double hi = 0.0;
        std::vector<std::uint64_t> bins; //!< size = bins + 2 (under/over).
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Hist> histograms;

    /**
     * The change since @p before: counters and histogram bins are
     * subtracted (metrics absent from @p before pass through whole),
     * gauges keep their current value (they are levels, not totals).
     * Zero-delta counters and empty-delta histograms are omitted.
     */
    MetricsSnapshot deltaFrom(const MetricsSnapshot &before) const;

    /** Render as a deterministic JSON object (sorted keys, fixed
     *  number formatting). */
    void writeJson(std::ostream &out) const;

    /** writeJson into a string. */
    std::string toJson() const;
};

/**
 * The registry.  Counter, gauge and histogram ids are separate dense
 * id spaces; re-registering a name returns the existing id (and
 * aborts if the name is already claimed by a different metric kind).
 * Each id space has a fixed capacity (kMaxCounters/kMaxGauges/
 * kMaxHistograms) so the value arrays never reallocate under
 * concurrent updates; registration past capacity aborts.
 */
class MetricsRegistry
{
  public:
    using Id = std::uint32_t;

    static constexpr std::size_t kMaxCounters = 1024;
    static constexpr std::size_t kMaxGauges = 512;
    static constexpr std::size_t kMaxHistograms = 128;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide instance used by all subsystems. */
    static MetricsRegistry &global();

    /** Register (or look up) a monotonic counter. */
    Id counter(const std::string &name) OS_EXCLUDES(mu_);

    /** Register (or look up) a last-value gauge. */
    Id gauge(const std::string &name) OS_EXCLUDES(mu_);

    /**
     * Register (or look up) a fixed-bucket histogram over [lo, hi)
     * with @p bins equal-width buckets plus underflow/overflow.
     */
    Id histogram(const std::string &name, double lo, double hi,
                 std::size_t bins) OS_EXCLUDES(mu_);

    /** Lock-free hot-path updates (relaxed atomics; any thread). */
    void
    inc(Id id, std::uint64_t delta = 1)
    {
        counters_[id].fetch_add(delta, std::memory_order_relaxed);
    }

    void
    set(Id id, double value)
    {
        gauges_[id].store(value, std::memory_order_relaxed);
    }

    void
    add(Id id, double delta)
    {
        gauges_[id].fetch_add(delta, std::memory_order_relaxed);
    }

    void observe(Id id, double value);

    /** Read-back by name; zero-value when not registered. */
    std::uint64_t counterValue(const std::string &name) const
        OS_EXCLUDES(mu_);
    double gaugeValue(const std::string &name) const OS_EXCLUDES(mu_);

    /** Copy every metric's current value. */
    MetricsSnapshot snapshot() const OS_EXCLUDES(mu_);

    /** Reset all values to zero, keeping registrations (ids remain
     *  valid).  Used by tests needing a pristine baseline. */
    void resetValues() OS_EXCLUDES(mu_);

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct HistogramData
    {
        double lo = 0.0;       //!< Immutable after registration.
        double hi = 0.0;       //!< Immutable after registration.
        double binWidth = 0.0; //!< Immutable after registration.
        /** [under, b0..bN-1, over]; length fixed at registration. */
        std::unique_ptr<std::atomic<std::uint64_t>[]> bins;
        std::size_t binCount = 0; //!< == bins length (N + 2).
        std::atomic<std::uint64_t> total{0};
        std::atomic<double> sum{0.0};
    };

    Id registerMetricLocked(const std::string &name, Kind kind)
        OS_REQUIRES(mu_);

    /** Guards registration and the name maps; values are atomics and
     *  need no lock.  No-op until OCEANSTORE_THREADED. */
    mutable Mutex mu_;

    std::map<std::string, std::pair<Kind, Id>> names_
        OS_GUARDED_BY(mu_);

    /** Fixed-capacity value arrays: ids index them directly and they
     *  never reallocate, so lock-free updates stay valid while other
     *  threads register new metrics. */
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters_{};
    std::array<std::atomic<double>, kMaxGauges> gauges_{};
    std::array<HistogramData, kMaxHistograms> histograms_;

    std::size_t counterCount_ OS_GUARDED_BY(mu_) = 0;
    std::size_t gaugeCount_ OS_GUARDED_BY(mu_) = 0;
    std::size_t histogramCount_ OS_GUARDED_BY(mu_) = 0;

    /** name of each id, per kind, for snapshotting. */
    std::vector<const std::string *> counterNames_ OS_GUARDED_BY(mu_);
    std::vector<const std::string *> gaugeNames_ OS_GUARDED_BY(mu_);
    std::vector<const std::string *> histogramNames_
        OS_GUARDED_BY(mu_);
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_METRICS_H
