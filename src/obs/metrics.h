/**
 * @file
 * Process-wide metrics registry (observability layer).
 *
 * Named counters, gauges and histograms with interned ids: a
 * subsystem registers each metric once (string lookup, O(log n)) and
 * thereafter increments through a dense integer id — a single vector
 * add on the hot path, cheap enough to stay always-on in the
 * simulator event loop.  Names follow the `component.event` scheme
 * (DESIGN.md section 11): `sim.events_fired`, `net.drops`,
 * `pbft.view_changes`, `plaxton.lookup_hops`, ...
 *
 * Snapshots are value copies keyed by name (sorted, so the JSON
 * rendering is deterministic); deltaFrom() subtracts a "before"
 * snapshot to isolate one bench repeat or one chaos seed.  The bench
 * runner embeds such deltas next to p50/p95 in its JSON output.
 *
 * The registry is process-wide (MetricsRegistry::global()) because
 * metric identity is program-wide: two scenarios bumping
 * `net.sends` mean the same thing.  Tests that need isolation take
 * a snapshot before and diff after.
 *
 * Thread contract (Runtime-seam prep, DESIGN.md section 12): every
 * member is guarded by mu_ and every method takes the lock.  In the
 * single-threaded sim build util::Mutex is a no-op, so the hot-path
 * inc() still compiles to a single vector add; the clang
 * -Wthread-safety build proves the discipline holds before the
 * real-process runtime turns the lock on (OCEANSTORE_THREADED).
 */

#ifndef OCEANSTORE_OBS_METRICS_H
#define OCEANSTORE_OBS_METRICS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace oceanstore {

/**
 * Value-copy of every registered metric, keyed by name.  Maps keep
 * the keys sorted, making snapshot rendering deterministic.
 */
struct MetricsSnapshot
{
    /** Fixed-bucket histogram contents. */
    struct Hist
    {
        double lo = 0.0;
        double hi = 0.0;
        std::vector<std::uint64_t> bins; //!< size = bins + 2 (under/over).
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Hist> histograms;

    /**
     * The change since @p before: counters and histogram bins are
     * subtracted (metrics absent from @p before pass through whole),
     * gauges keep their current value (they are levels, not totals).
     * Zero-delta counters and empty-delta histograms are omitted.
     */
    MetricsSnapshot deltaFrom(const MetricsSnapshot &before) const;

    /** Render as a deterministic JSON object (sorted keys, fixed
     *  number formatting). */
    void writeJson(std::ostream &out) const;

    /** writeJson into a string. */
    std::string toJson() const;
};

/**
 * The registry.  Counter, gauge and histogram ids are separate dense
 * id spaces; re-registering a name returns the existing id (and
 * aborts if the name is already claimed by a different metric kind).
 */
class MetricsRegistry
{
  public:
    using Id = std::uint32_t;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide instance used by all subsystems. */
    static MetricsRegistry &global();

    /** Register (or look up) a monotonic counter. */
    Id counter(const std::string &name) OS_EXCLUDES(mu_);

    /** Register (or look up) a last-value gauge. */
    Id gauge(const std::string &name) OS_EXCLUDES(mu_);

    /**
     * Register (or look up) a fixed-bucket histogram over [lo, hi)
     * with @p bins equal-width buckets plus underflow/overflow.
     */
    Id histogram(const std::string &name, double lo, double hi,
                 std::size_t bins) OS_EXCLUDES(mu_);

    /** O(1) hot-path updates (the Mutex is a no-op in the sim build). */
    void
    inc(Id id, std::uint64_t delta = 1) OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        counters_[id] += delta;
    }

    void
    set(Id id, double value) OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        gauges_[id] = value;
    }

    void
    add(Id id, double delta) OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        gauges_[id] += delta;
    }

    void observe(Id id, double value) OS_EXCLUDES(mu_);

    /** Read-back by name; zero-value when not registered. */
    std::uint64_t counterValue(const std::string &name) const
        OS_EXCLUDES(mu_);
    double gaugeValue(const std::string &name) const OS_EXCLUDES(mu_);

    /** Copy every metric's current value. */
    MetricsSnapshot snapshot() const OS_EXCLUDES(mu_);

    /** Reset all values to zero, keeping registrations (ids remain
     *  valid).  Used by tests needing a pristine baseline. */
    void resetValues() OS_EXCLUDES(mu_);

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct HistogramData
    {
        double lo = 0.0;
        double hi = 0.0;
        double binWidth = 0.0;
        std::vector<std::uint64_t> bins; //!< [under, b0..bN-1, over]
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    Id registerMetricLocked(const std::string &name, Kind kind)
        OS_REQUIRES(mu_);

    /** Guards every member; no-op until OCEANSTORE_THREADED. */
    mutable Mutex mu_;

    std::map<std::string, std::pair<Kind, Id>> names_
        OS_GUARDED_BY(mu_);
    std::vector<std::uint64_t> counters_ OS_GUARDED_BY(mu_);
    std::vector<double> gauges_ OS_GUARDED_BY(mu_);
    std::vector<HistogramData> histograms_ OS_GUARDED_BY(mu_);
    /** name of each id, per kind, for snapshotting. */
    std::vector<const std::string *> counterNames_ OS_GUARDED_BY(mu_);
    std::vector<const std::string *> gaugeNames_ OS_GUARDED_BY(mu_);
    std::vector<const std::string *> histogramNames_
        OS_GUARDED_BY(mu_);
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_METRICS_H
