/**
 * @file
 * Process-wide metrics registry (observability layer).
 *
 * Named counters, gauges and histograms with interned ids: a
 * subsystem registers each metric once (string lookup, O(log n)) and
 * thereafter increments through a dense integer id — a single vector
 * add on the hot path, cheap enough to stay always-on in the
 * simulator event loop.  Names follow the `component.event` scheme
 * (DESIGN.md section 11): `sim.events_fired`, `net.drops`,
 * `pbft.view_changes`, `plaxton.lookup_hops`, ...
 *
 * Snapshots are value copies keyed by name (sorted, so the JSON
 * rendering is deterministic); deltaFrom() subtracts a "before"
 * snapshot to isolate one bench repeat or one chaos seed.  The bench
 * runner embeds such deltas next to p50/p95 in its JSON output.
 *
 * The registry is process-wide (MetricsRegistry::global()) because
 * metric identity is program-wide: two scenarios bumping
 * `net.sends` mean the same thing.  Tests that need isolation take
 * a snapshot before and diff after.
 */

#ifndef OCEANSTORE_OBS_METRICS_H
#define OCEANSTORE_OBS_METRICS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace oceanstore {

/**
 * Value-copy of every registered metric, keyed by name.  Maps keep
 * the keys sorted, making snapshot rendering deterministic.
 */
struct MetricsSnapshot
{
    /** Fixed-bucket histogram contents. */
    struct Hist
    {
        double lo = 0.0;
        double hi = 0.0;
        std::vector<std::uint64_t> bins; //!< size = bins + 2 (under/over).
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Hist> histograms;

    /**
     * The change since @p before: counters and histogram bins are
     * subtracted (metrics absent from @p before pass through whole),
     * gauges keep their current value (they are levels, not totals).
     * Zero-delta counters and empty-delta histograms are omitted.
     */
    MetricsSnapshot deltaFrom(const MetricsSnapshot &before) const;

    /** Render as a deterministic JSON object (sorted keys, fixed
     *  number formatting). */
    void writeJson(std::ostream &out) const;

    /** writeJson into a string. */
    std::string toJson() const;
};

/**
 * The registry.  Counter, gauge and histogram ids are separate dense
 * id spaces; re-registering a name returns the existing id (and
 * aborts if the name is already claimed by a different metric kind).
 */
class MetricsRegistry
{
  public:
    using Id = std::uint32_t;

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide instance used by all subsystems. */
    static MetricsRegistry &global();

    /** Register (or look up) a monotonic counter. */
    Id counter(const std::string &name);

    /** Register (or look up) a last-value gauge. */
    Id gauge(const std::string &name);

    /**
     * Register (or look up) a fixed-bucket histogram over [lo, hi)
     * with @p bins equal-width buckets plus underflow/overflow.
     */
    Id histogram(const std::string &name, double lo, double hi,
                 std::size_t bins);

    /** O(1) hot-path updates. */
    void inc(Id id, std::uint64_t delta = 1) { counters_[id] += delta; }
    void set(Id id, double value) { gauges_[id] = value; }
    void add(Id id, double delta) { gauges_[id] += delta; }
    void observe(Id id, double value);

    /** Read-back by name; zero-value when not registered. */
    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;

    /** Copy every metric's current value. */
    MetricsSnapshot snapshot() const;

    /** Reset all values to zero, keeping registrations (ids remain
     *  valid).  Used by tests needing a pristine baseline. */
    void resetValues();

  private:
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct HistogramData
    {
        double lo = 0.0;
        double hi = 0.0;
        double binWidth = 0.0;
        std::vector<std::uint64_t> bins; //!< [under, b0..bN-1, over]
        std::uint64_t total = 0;
        double sum = 0.0;
    };

    Id registerMetric(const std::string &name, Kind kind);

    std::map<std::string, std::pair<Kind, Id>> names_;
    std::vector<std::uint64_t> counters_;
    std::vector<double> gauges_;
    std::vector<HistogramData> histograms_;
    /** name of each id, per kind, for snapshotting. */
    std::vector<const std::string *> counterNames_;
    std::vector<const std::string *> gaugeNames_;
    std::vector<const std::string *> histogramNames_;
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_METRICS_H
