#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "obs/export.h"
#include "obs/metrics.h"

namespace oceanstore {

std::atomic<FlightRecorder *> FlightRecorder::active_{nullptr};

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), slots_(new Slot[capacity])
{
    OS_CHECK(capacity > 0, "FlightRecorder: zero capacity");
}

void
FlightRecorder::record(const SpanRecord &rec)
{
    recorded_.fetch_add(1, std::memory_order_relaxed);
    static const MetricsRegistry::Id flight_recorded =
        MetricsRegistry::global().counter("obs.flight_recorded");
    MetricsRegistry::global().inc(flight_recorded);

    std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[seq % capacity_];
    std::uint32_t prev =
        slot.state.exchange(kWriting, std::memory_order_acquire);
    if (prev == kWriting) {
        // A slower writer still owns this slot (we lapped the whole
        // ring mid-copy).  Losing one span beats blocking the hot
        // path; the original owner will publish its record.
        lost_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slot.rec = rec;
    slot.state.store(kFull, std::memory_order_release);
}

std::vector<SpanRecord>
FlightRecorder::snapshot() const
{
    std::vector<SpanRecord> out;
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; i++) {
        const Slot &slot = slots_[i];
        if (slot.state.load(std::memory_order_acquire) == kFull)
            out.push_back(slot.rec);
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.spanId < b.spanId;
              });
    return out;
}

bool
FlightRecorder::dump(const std::string &dir, const std::string &label,
                     const Tracer &tracer) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string base = dir + "/" + label + ".flight";

    std::vector<SpanRecord> spans = snapshot();
    bool ok = true;
    {
        std::ofstream out(base + ".trace.jsonl");
        if (!out)
            return false;
        out << "{\"meta\": \"flight\", \"clock\": \"wall\""
            << ", \"spans\": " << spans.size()
            << ", \"recorded\": " << recorded()
            << ", \"lost\": " << lost_.load(std::memory_order_relaxed)
            << ", \"capacity\": " << capacity_ << "}\n";
        writeSpansJsonl(tracer, spans, out);
        ok = static_cast<bool>(out) && ok;
    }
    {
        std::ofstream out(base + ".metrics.json");
        if (!out)
            return false;
        MetricsRegistry::global().snapshot().writeJson(out);
        ok = static_cast<bool>(out) && ok;
    }
    static const MetricsRegistry::Id flight_dumps =
        MetricsRegistry::global().counter("obs.flight_dumps");
    MetricsRegistry::global().inc(flight_dumps);
    return ok;
}

void
FlightRecorder::clear()
{
    for (std::size_t i = 0; i < capacity_; i++)
        slots_[i].state.store(kEmpty, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    recorded_.store(0, std::memory_order_relaxed);
    lost_.store(0, std::memory_order_relaxed);
}

FlightScope::FlightScope(FlightRecorder &recorder, Tracer &tracer,
                         std::string label)
    : recorder_(recorder), tracer_(tracer), label_(std::move(label)),
      prevActive_(
          FlightRecorder::active_.load(std::memory_order_acquire)),
      prevHook_(checkFailureHook()), prevHookArg_(checkFailureHookArg())
{
    const char *env = std::getenv("OCEANSTORE_CHAOS_DUMP_DIR");
    dir_ = env && *env ? env : ".";
    FlightRecorder::active_.store(&recorder_,
                                  std::memory_order_release);
    setCheckFailureHook(&FlightScope::onCheckFailure, this);
}

FlightScope::~FlightScope()
{
    setCheckFailureHook(prevHook_, prevHookArg_);
    FlightRecorder::active_.store(prevActive_,
                                  std::memory_order_release);
}

void
FlightScope::onCheckFailure(void *arg)
{
    FlightScope *self = static_cast<FlightScope *>(arg);
    bool ok = self->recorder_.dump(self->dir_, self->label_,
                                   self->tracer_);
    std::fprintf(stderr,
                 "flight recorder: %s %s/%s.flight.* (%llu spans "
                 "recorded)\n",
                 ok ? "dumped" : "FAILED to dump", self->dir_.c_str(),
                 self->label_.c_str(),
                 static_cast<unsigned long long>(
                     self->recorder_.recorded()));
}

} // namespace oceanstore
