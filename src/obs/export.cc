#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace oceanstore {

namespace {

const char *
kindName(SpanKind k)
{
    switch (k) {
    case SpanKind::Local:
        return "local";
    case SpanKind::Send:
        return "send";
    case SpanKind::Multicast:
        return "multicast";
    }
    return "?";
}

const char *
statusName(SpanStatus s)
{
    return s == SpanStatus::Ok ? "ok" : "dropped";
}

/** Deterministic sim-time rendering (sub-microsecond resolution on
 *  second-scale values). */
std::string
jsonTime(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Escape a string for embedding in JSON. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeSpansJsonl(const Tracer &tracer, std::ostream &out)
{
    writeSpansJsonl(tracer, tracer.buffer().snapshot(), out);
}

void
writeSpansJsonl(const Tracer &tracer,
                const std::vector<SpanRecord> &spans, std::ostream &out)
{
    for (const SpanRecord &r : spans) {
        out << "{\"trace\": " << r.traceId << ", \"span\": " << r.spanId
            << ", \"parent\": " << r.parent << ", \"component\": \""
            << jsonEscape(tracer.internedString(r.component))
            << "\", \"name\": \""
            << jsonEscape(tracer.internedString(r.name)) << "\"";
        if (r.node != ~0u)
            out << ", \"node\": " << r.node;
        if (r.peer != ~0u)
            out << ", \"peer\": " << r.peer;
        out << ", \"hop\": " << r.hop;
        if (r.bytes != 0)
            out << ", \"bytes\": " << r.bytes;
        out << ", \"start\": " << jsonTime(r.start)
            << ", \"end\": " << jsonTime(r.end) << ", \"kind\": \""
            << kindName(r.kind) << "\", \"status\": \""
            << statusName(r.status) << "\"}\n";
    }
}

void
writeChromeTrace(const Tracer &tracer, std::ostream &out)
{
    out << "[";
    bool first = true;
    for (const SpanRecord &r : tracer.buffer().snapshot()) {
        // Complete ("X") events: sim-seconds -> microseconds; one pid
        // per trace so chrome://tracing groups causally related spans,
        // one tid per node.
        double ts = r.start * 1e6;
        double dur = (r.end - r.start) * 1e6;
        if (dur < 1.0)
            dur = 1.0; // zero-width spans are invisible
        out << (first ? "\n" : ",\n") << "{\"name\": \""
            << jsonEscape(tracer.internedString(r.name))
            << "\", \"cat\": \""
            << jsonEscape(tracer.internedString(r.component))
            << "\", \"ph\": \"X\", \"ts\": " << jsonTime(ts)
            << ", \"dur\": " << jsonTime(dur)
            << ", \"pid\": " << r.traceId << ", \"tid\": "
            << (r.node == ~0u ? 0 : r.node)
            << ", \"args\": {\"span\": " << r.spanId
            << ", \"parent\": " << r.parent << ", \"hop\": " << r.hop
            << ", \"bytes\": " << r.bytes << ", \"kind\": \""
            << kindName(r.kind) << "\", \"status\": \""
            << statusName(r.status) << "\"}}";
        first = false;
    }
    out << "\n]\n";
}

bool
dumpSpansJsonl(const Tracer &tracer, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeSpansJsonl(tracer, out);
    return static_cast<bool>(out);
}

bool
dumpChromeTrace(const Tracer &tracer, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(tracer, out);
    return static_cast<bool>(out);
}

} // namespace oceanstore
