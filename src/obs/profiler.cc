#include "obs/profiler.h"

#include <algorithm>

#include "util/check.h"

namespace oceanstore {

std::atomic<PhaseProfiler *> PhaseProfiler::active_{nullptr};

namespace {

/** Each thread's ambient phase label (shared across profiler
 *  instances; exactly one is active at a time). */
thread_local PhaseProfiler::Label tlCurrentLabel = 0;

} // namespace

PhaseProfiler::PhaseProfiler()
{
    // Label 0: events scheduled with no ambient attribution.
    MutexLock lock(mu_);
    labelNames_.push_back("(unlabeled)");
    labelTable_.emplace(labelNames_.back(), 0);
}

PhaseProfiler::Label
PhaseProfiler::currentLabel() const
{
    return tlCurrentLabel;
}

void
PhaseProfiler::setCurrent(Label label)
{
    tlCurrentLabel = label;
}

PhaseProfiler::Label
PhaseProfiler::intern(const std::string &name)
{
    MutexLock lock(mu_);
    auto it = labelTable_.find(name);
    if (it != labelTable_.end())
        return it->second;
    OS_CHECK(labelNames_.size() < kMaxLabels,
             "profiler: label capacity exhausted interning '", name,
             "'");
    Label label = static_cast<Label>(labelNames_.size());
    labelNames_.push_back(name);
    labelTable_.emplace(name, label);
    return label;
}

PhaseProfiler::Label
PhaseProfiler::labelForMessageType(const std::string &type)
{
    {
        MutexLock lock(mu_);
        auto it = typeCache_.find(type);
        if (it != typeCache_.end())
            return it->second;
    }
    std::size_t dot = type.find('.');
    Label label = intern(dot == std::string::npos
                             ? type
                             : type.substr(0, dot));
    MutexLock lock(mu_);
    typeCache_.emplace(type, label);
    return label;
}

std::vector<PhaseProfiler::PhaseStats>
PhaseProfiler::stats() const
{
    std::vector<PhaseStats> out;
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < labelNames_.size(); i++) {
        std::uint64_t events =
            buckets_[i].events.load(std::memory_order_relaxed);
        if (events == 0)
            continue;
        PhaseStats row;
        row.name = labelNames_[i];
        row.events = events;
        row.delay = buckets_[i].delay.load(std::memory_order_relaxed);
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const PhaseStats &a, const PhaseStats &b) {
                  return a.name < b.name;
              });
    return out;
}

std::uint64_t
PhaseProfiler::totalEvents() const
{
    std::uint64_t total = 0;
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < labelNames_.size(); i++)
        total += buckets_[i].events.load(std::memory_order_relaxed);
    return total;
}

void
PhaseProfiler::clear()
{
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < labelNames_.size(); i++) {
        buckets_[i].events.store(0, std::memory_order_relaxed);
        buckets_[i].delay.store(0.0, std::memory_order_relaxed);
    }
    tlCurrentLabel = 0;
}

} // namespace oceanstore
