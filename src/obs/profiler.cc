#include "obs/profiler.h"

#include <algorithm>

namespace oceanstore {

PhaseProfiler *PhaseProfiler::active_ = nullptr;

PhaseProfiler::PhaseProfiler()
{
    // Label 0: events scheduled with no ambient attribution.
    labelNames_.push_back("(unlabeled)");
    labelTable_.emplace(labelNames_.back(), 0);
    buckets_.emplace_back();
}

PhaseProfiler::Label
PhaseProfiler::intern(const std::string &name)
{
    auto it = labelTable_.find(name);
    if (it != labelTable_.end())
        return it->second;
    Label label = static_cast<Label>(labelNames_.size());
    labelNames_.push_back(name);
    labelTable_.emplace(name, label);
    buckets_.emplace_back();
    return label;
}

PhaseProfiler::Label
PhaseProfiler::labelForMessageType(const std::string &type)
{
    auto it = typeCache_.find(type);
    if (it != typeCache_.end())
        return it->second;
    std::size_t dot = type.find('.');
    Label label = intern(dot == std::string::npos
                             ? type
                             : type.substr(0, dot));
    typeCache_.emplace(type, label);
    return label;
}

std::vector<PhaseProfiler::PhaseStats>
PhaseProfiler::stats() const
{
    std::vector<PhaseStats> out;
    for (std::size_t i = 0; i < buckets_.size(); i++) {
        if (buckets_[i].events == 0)
            continue;
        PhaseStats row;
        row.name = labelNames_[i];
        row.events = buckets_[i].events;
        row.simDelay = buckets_[i].simDelay;
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const PhaseStats &a, const PhaseStats &b) {
                  return a.name < b.name;
              });
    return out;
}

std::uint64_t
PhaseProfiler::totalEvents() const
{
    std::uint64_t total = 0;
    for (const Bucket &b : buckets_)
        total += b.events;
    return total;
}

void
PhaseProfiler::clear()
{
    for (Bucket &b : buckets_) {
        b.events = 0;
        b.simDelay = 0.0;
    }
    current_ = 0;
}

} // namespace oceanstore
