#include "obs/trace.h"

#include "util/check.h"

namespace oceanstore {

Tracer *Tracer::active_ = nullptr;

std::uint32_t
Tracer::intern(const std::string &s)
{
    auto it = internTable_.find(s);
    if (it != internTable_.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(strings_.size());
    internTable_.emplace(s, id);
    strings_.push_back(s);
    return id;
}

const std::string &
Tracer::internedString(std::uint32_t id) const
{
    OS_CHECK(id < strings_.size(), "Tracer: bad interned id ", id);
    return strings_[id];
}

std::uint32_t
Tracer::newSpan(const std::string &component, const std::string &name,
                std::uint32_t node, std::uint32_t peer,
                std::uint32_t bytes, double start, double end,
                SpanKind kind, SpanStatus status)
{
    SpanRecord rec;
    if (current_.valid()) {
        rec.traceId = current_.traceId;
        rec.parent = current_.spanId;
        rec.hop = current_.hop + 1;
    } else {
        rec.traceId = nextTraceId_++;
        rec.parent = 0;
        rec.hop = 0;
    }
    rec.component = intern(component);
    rec.name = intern(name);
    rec.node = node;
    rec.peer = peer;
    rec.bytes = bytes;
    rec.start = start;
    rec.end = end;
    rec.kind = kind;
    rec.status = status;
    rec.spanId = static_cast<std::uint32_t>(buffer_.size() + 1);
    buffer_.append(rec);
    return rec.spanId;
}

std::uint32_t
Tracer::beginLocalSpan(const std::string &component,
                       const std::string &name, double now,
                       std::uint32_t node)
{
    std::uint32_t id = newSpan(component, name, node, ~0u, 0, now, now,
                               SpanKind::Local, SpanStatus::Ok);
    const SpanRecord &rec = buffer_.at(id);
    scopeStack_.push_back(current_);
    current_ = TraceContext{rec.traceId, id, rec.hop};
    return id;
}

void
Tracer::endLocalSpan(std::uint32_t span_id, double now)
{
    OS_CHECK(!scopeStack_.empty(),
             "Tracer::endLocalSpan without matching begin");
    OS_CHECK(current_.spanId == span_id,
             "Tracer::endLocalSpan: unbalanced span nesting (closing ",
             span_id, " while inside ", current_.spanId, ")");
    setSpanEnd(span_id, now);
    current_ = scopeStack_.back();
    scopeStack_.pop_back();
}

TraceContext
Tracer::messageSpan(const std::string &name, std::uint32_t node,
                    std::uint32_t peer, std::uint32_t bytes,
                    double start, double end, SpanKind kind,
                    SpanStatus status)
{
    std::uint32_t id = newSpan("net", name, node, peer, bytes, start,
                               end, kind, status);
    const SpanRecord &rec = buffer_.at(id);
    return TraceContext{rec.traceId, id, rec.hop};
}

void
Tracer::clear()
{
    buffer_.clear();
    current_ = TraceContext{};
    scopeStack_.clear();
    internTable_.clear();
    strings_.clear();
    nextTraceId_ = 1;
}

} // namespace oceanstore
