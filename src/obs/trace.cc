#include "obs/trace.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace oceanstore {

std::atomic<Tracer *> Tracer::active_{nullptr};

namespace {

/** Each thread's ambient causal position.  Shared across Tracer
 *  instances (exactly one is active at a time), per thread so
 *  concurrent strand callbacks never race on it. */
thread_local TraceContext tlCurrent;
thread_local std::vector<TraceContext> tlScopeStack;

/** Process-unique TraceBuffer instance ids (never reused), so a
 *  thread's cached arena pointer can never alias a new buffer. */
std::atomic<std::uint64_t> nextBufferId{1};

} // namespace

TraceBuffer::TraceBuffer()
    : bufferId_(nextBufferId.fetch_add(1, std::memory_order_relaxed))
{
}

TraceBuffer::Arena &
TraceBuffer::arenaForThisThread() const
{
    // Single-entry cache: the common case is one buffer appending per
    // thread, so almost every append skips arenasMu_ entirely.  The
    // buffer id check makes a stale entry (previous buffer, possibly
    // destroyed) miss rather than alias.
    struct Cached
    {
        std::uint64_t buffer = 0;
        Arena *arena = nullptr;
    };
    thread_local Cached cached;
    if (cached.buffer == bufferId_)
        return *cached.arena;

    MutexLock lock(arenasMu_);
    arenas_.push_back(std::make_unique<Arena>());
    Arena *a = arenas_.back().get();
    cached = Cached{bufferId_, a};
    return *a;
}

std::uint32_t
TraceBuffer::append(SpanRecord &rec)
{
    rec.spanId = nextSpanId_.fetch_add(1, std::memory_order_relaxed);
    Arena &a = arenaForThisThread();
    MutexLock lock(a.mu);
    a.records.push_back(rec);
    return rec.spanId;
}

void
TraceBuffer::setEnd(std::uint32_t span_id, double end)
{
    MutexLock lock(arenasMu_);
    for (const std::unique_ptr<Arena> &a : arenas_) {
        MutexLock arena_lock(a->mu);
        // Ids ascend within an arena (its appends are serialized and
        // draw from the global counter), so binary search works.
        auto it = std::lower_bound(
            a->records.begin(), a->records.end(), span_id,
            [](const SpanRecord &r, std::uint32_t id) {
                return r.spanId < id;
            });
        if (it != a->records.end() && it->spanId == span_id) {
            if (end > it->end)
                it->end = end;
            return;
        }
    }
}

std::vector<SpanRecord>
TraceBuffer::snapshot() const
{
    std::vector<SpanRecord> out;
    {
        MutexLock lock(arenasMu_);
        for (const std::unique_ptr<Arena> &a : arenas_) {
            MutexLock arena_lock(a->mu);
            out.insert(out.end(), a->records.begin(),
                       a->records.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &x, const SpanRecord &y) {
                  return x.spanId < y.spanId;
              });
    return out;
}

std::size_t
TraceBuffer::size() const
{
    std::size_t n = 0;
    MutexLock lock(arenasMu_);
    for (const std::unique_ptr<Arena> &a : arenas_) {
        MutexLock arena_lock(a->mu);
        n += a->records.size();
    }
    return n;
}

void
TraceBuffer::clear()
{
    MutexLock lock(arenasMu_);
    for (const std::unique_ptr<Arena> &a : arenas_) {
        MutexLock arena_lock(a->mu);
        a->records.clear();
    }
    nextSpanId_.store(1, std::memory_order_relaxed);
}

void
TraceBuffer::reserve(std::size_t n)
{
    Arena &a = arenaForThisThread();
    MutexLock lock(a.mu);
    a.records.reserve(n);
}

const TraceContext &
Tracer::current() const
{
    return tlCurrent;
}

void
Tracer::setCurrent(const TraceContext &ctx)
{
    tlCurrent = ctx;
}

void
Tracer::clearCurrent()
{
    tlCurrent = TraceContext{};
}

std::uint32_t
Tracer::intern(const std::string &s)
{
    MutexLock lock(internMu_);
    auto it = internTable_.find(s);
    if (it != internTable_.end())
        return it->second;
    std::uint32_t id = static_cast<std::uint32_t>(strings_.size());
    internTable_.emplace(s, id);
    strings_.push_back(s);
    return id;
}

const std::string &
Tracer::internedString(std::uint32_t id) const
{
    // Check outside the lock so an OS_CHECK failure (whose flight-
    // recorder dump hook re-enters this function) cannot deadlock.
    std::size_t n;
    {
        MutexLock lock(internMu_);
        n = strings_.size();
    }
    OS_CHECK(id < n, "Tracer: bad interned id ", id);
    MutexLock lock(internMu_);
    // Deque references are stable past the unlock.
    return strings_[id];
}

std::vector<std::string>
Tracer::strings() const
{
    MutexLock lock(internMu_);
    return std::vector<std::string>(strings_.begin(), strings_.end());
}

SpanRecord
Tracer::newSpan(const std::string &component, const std::string &name,
                std::uint32_t node, std::uint32_t peer,
                std::uint32_t bytes, double start, double end,
                SpanKind kind, SpanStatus status)
{
    SpanRecord rec;
    if (tlCurrent.valid()) {
        rec.traceId = tlCurrent.traceId;
        rec.parent = tlCurrent.spanId;
        rec.hop = tlCurrent.hop + 1;
    } else {
        rec.traceId =
            nextTraceId_.fetch_add(1, std::memory_order_relaxed);
        rec.parent = 0;
        rec.hop = 0;
    }
    rec.component = intern(component);
    rec.name = intern(name);
    rec.node = node;
    rec.peer = peer;
    rec.bytes = bytes;
    rec.start = start;
    rec.end = end;
    rec.kind = kind;
    rec.status = status;
    buffer_.append(rec); // stamps rec.spanId
    static const MetricsRegistry::Id spans_recorded =
        MetricsRegistry::global().counter("obs.spans_recorded");
    MetricsRegistry::global().inc(spans_recorded);
    if (FlightRecorder *fr = FlightRecorder::active())
        fr->record(rec);
    return rec;
}

std::uint32_t
Tracer::beginLocalSpan(const std::string &component,
                       const std::string &name, double now,
                       std::uint32_t node)
{
    SpanRecord rec = newSpan(component, name, node, ~0u, 0, now, now,
                             SpanKind::Local, SpanStatus::Ok);
    tlScopeStack.push_back(tlCurrent);
    tlCurrent = TraceContext{rec.traceId, rec.spanId, rec.hop};
    return rec.spanId;
}

void
Tracer::endLocalSpan(std::uint32_t span_id, double now)
{
    OS_CHECK(!tlScopeStack.empty(),
             "Tracer::endLocalSpan without matching begin");
    OS_CHECK(tlCurrent.spanId == span_id,
             "Tracer::endLocalSpan: unbalanced span nesting (closing ",
             span_id, " while inside ", tlCurrent.spanId, ")");
    setSpanEnd(span_id, now);
    tlCurrent = tlScopeStack.back();
    tlScopeStack.pop_back();
}

TraceContext
Tracer::messageSpan(const std::string &name, std::uint32_t node,
                    std::uint32_t peer, std::uint32_t bytes,
                    double start, double end, SpanKind kind,
                    SpanStatus status)
{
    SpanRecord rec = newSpan("net", name, node, peer, bytes, start,
                             end, kind, status);
    return TraceContext{rec.traceId, rec.spanId, rec.hop};
}

void
Tracer::clear()
{
    buffer_.clear();
    tlCurrent = TraceContext{};
    tlScopeStack.clear();
    {
        MutexLock lock(internMu_);
        internTable_.clear();
        strings_.clear();
    }
    nextTraceId_.store(1, std::memory_order_relaxed);
}

} // namespace oceanstore
