/**
 * @file
 * Flight recorder (observability layer).
 *
 * A fixed-size lock-free ring of the most recent spans plus a
 * metrics snapshot, for the threaded deployment mode: when an
 * OS_CHECK fails in a live cluster there is no deterministic seed to
 * re-run under tracing (the chaos suite's trick), so the *recent
 * past* has to already be in memory.  A FlightScope keeps the ring
 * fed from the active Tracer and arms a check-failure hook that
 * dumps the ring + a MetricsRegistry snapshot to
 * OCEANSTORE_CHAOS_DUMP_DIR (or the working directory) just before
 * the process aborts — the deployment-mode extension of the chaos
 * suite's failing-seed dumps.
 *
 * The ring is wait-free for writers: a slot index from one atomic
 * fetch-add, a state CAS to claim the slot, a record copy, a release
 * store.  A writer lapped mid-copy loses its record (counted in
 * obs.flight_recorded vs the ring contents) rather than blocking.
 * snapshot() is exact when writers are quiescent — which is the case
 * in tests and in the failure hook's single surviving thread — and
 * best-effort otherwise.
 */

#ifndef OCEANSTORE_OBS_FLIGHT_RECORDER_H
#define OCEANSTORE_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/check.h"

namespace oceanstore {

/** The span ring.  Capacity is fixed at construction; the newest
 *  spans overwrite the oldest. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 4096);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** The process-wide recorder the Tracer feeds, or nullptr when
     *  none is armed (the common, zero-cost case). */
    static FlightRecorder *
    active()
    {
        return active_.load(std::memory_order_acquire);
    }

    /** Record a span (lock-free; called by Tracer::newSpan on every
     *  span while armed). */
    void record(const SpanRecord &rec);

    /** Copy of the ring contents, oldest span first (sorted by span
     *  id).  Exact when writers are quiescent. */
    std::vector<SpanRecord> snapshot() const;

    /** Total spans offered to the ring (including overwritten and
     *  lost ones). */
    std::uint64_t
    recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Dump the ring (JSONL, preceded by one `{"meta": ...}` line
     * announcing the wall clock) and a MetricsRegistry::global()
     * snapshot to `<dir>/<label>.flight.trace.jsonl` and
     * `<dir>/<label>.flight.metrics.json`.  Interned strings resolve
     * through @p tracer.  @return false on I/O failure.
     */
    bool dump(const std::string &dir, const std::string &label,
              const Tracer &tracer) const;

    /** Drop all recorded spans (quiescent-only). */
    void clear();

  private:
    friend class FlightScope;

    enum : std::uint32_t
    {
        kEmpty = 0,
        kWriting = 1,
        kFull = 2,
    };

    struct Slot
    {
        std::atomic<std::uint32_t> state{kEmpty};
        SpanRecord rec;
    };

    static std::atomic<FlightRecorder *> active_;

    const std::size_t capacity_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> recorded_{0};
    std::atomic<std::uint64_t> lost_{0};
};

/**
 * RAII arming of the flight recorder: installs @p recorder as the
 * process-wide active instance (fed by every traced span) and hooks
 * check failures to dump it — spans via @p tracer's intern table,
 * metrics from the global registry — into OCEANSTORE_CHAOS_DUMP_DIR
 * (falling back to the working directory) under @p label.  Restores
 * the previous recorder and hook on destruction.
 */
class FlightScope
{
  public:
    FlightScope(FlightRecorder &recorder, Tracer &tracer,
                std::string label);
    ~FlightScope();

    FlightScope(const FlightScope &) = delete;
    FlightScope &operator=(const FlightScope &) = delete;

    /** The directory the failure hook will dump into (resolved from
     *  the environment at construction). */
    const std::string &dumpDir() const { return dir_; }

  private:
    static void onCheckFailure(void *arg);

    FlightRecorder &recorder_;
    Tracer &tracer_;
    std::string label_;
    std::string dir_;
    FlightRecorder *prevActive_;
    CheckFailureHook prevHook_;
    void *prevHookArg_;
};

} // namespace oceanstore

#endif // OCEANSTORE_OBS_FLIGHT_RECORDER_H
