#include "obs/metrics.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace oceanstore {

namespace {

/** Shortest round-trippable rendering, deterministic across runs. */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

MetricsRegistry::Id
MetricsRegistry::registerMetricLocked(const std::string &name,
                                      Kind kind)
{
    auto it = names_.find(name);
    if (it != names_.end()) {
        OS_CHECK(it->second.first == kind,
                 "metric '", name, "' re-registered as a different kind");
        return it->second.second;
    }
    Id id = 0;
    switch (kind) {
    case Kind::Counter:
        OS_CHECK(counterCount_ < kMaxCounters,
                 "metrics: counter capacity exhausted registering '",
                 name, "'");
        id = static_cast<Id>(counterCount_++);
        break;
    case Kind::Gauge:
        OS_CHECK(gaugeCount_ < kMaxGauges,
                 "metrics: gauge capacity exhausted registering '",
                 name, "'");
        id = static_cast<Id>(gaugeCount_++);
        break;
    case Kind::Histogram:
        OS_CHECK(histogramCount_ < kMaxHistograms,
                 "metrics: histogram capacity exhausted registering '",
                 name, "'");
        id = static_cast<Id>(histogramCount_++);
        break;
    }
    auto ins = names_.emplace(name, std::make_pair(kind, id));
    const std::string *key = &ins.first->first;
    switch (kind) {
    case Kind::Counter:
        counterNames_.push_back(key);
        break;
    case Kind::Gauge:
        gaugeNames_.push_back(key);
        break;
    case Kind::Histogram:
        histogramNames_.push_back(key);
        break;
    }
    return id;
}

MetricsRegistry::Id
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(mu_);
    return registerMetricLocked(name, Kind::Counter);
}

MetricsRegistry::Id
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(mu_);
    return registerMetricLocked(name, Kind::Gauge);
}

MetricsRegistry::Id
MetricsRegistry::histogram(const std::string &name, double lo, double hi,
                           std::size_t bins)
{
    OS_CHECK(hi > lo && bins > 0, "histogram '", name,
             "': bad bucket range");
    MutexLock lock(mu_);
    auto it = names_.find(name);
    bool fresh = it == names_.end();
    Id id = registerMetricLocked(name, Kind::Histogram);
    if (fresh) {
        HistogramData &h = histograms_[id];
        h.lo = lo;
        h.hi = hi;
        h.binWidth = (hi - lo) / static_cast<double>(bins);
        h.binCount = bins + 2; // [underflow, buckets..., overflow]
        h.bins = std::make_unique<std::atomic<std::uint64_t>[]>(
            h.binCount);
    }
    return id;
}

void
MetricsRegistry::observe(Id id, double value)
{
    // Lock-free: the histogram's shape (lo/hi/binWidth/bins) is
    // immutable once its registration returned the id to the caller.
    HistogramData &h = histograms_[id];
    std::size_t bin;
    if (value < h.lo) {
        bin = 0;
    } else if (value >= h.hi) {
        bin = h.binCount - 1;
    } else {
        bin = 1 + static_cast<std::size_t>((value - h.lo) / h.binWidth);
        if (bin > h.binCount - 2)
            bin = h.binCount - 2;
    }
    h.bins[bin].fetch_add(1, std::memory_order_relaxed);
    h.total.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    MutexLock lock(mu_);
    auto it = names_.find(name);
    if (it == names_.end() || it->second.first != Kind::Counter)
        return 0;
    return counters_[it->second.second].load(
        std::memory_order_relaxed);
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    MutexLock lock(mu_);
    auto it = names_.find(name);
    if (it == names_.end() || it->second.first != Kind::Gauge)
        return 0.0;
    return gauges_[it->second.second].load(std::memory_order_relaxed);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < counterCount_; i++)
        snap.counters[*counterNames_[i]] =
            counters_[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < gaugeCount_; i++)
        snap.gauges[*gaugeNames_[i]] =
            gauges_[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < histogramCount_; i++) {
        const HistogramData &h = histograms_[i];
        MetricsSnapshot::Hist out;
        out.lo = h.lo;
        out.hi = h.hi;
        out.bins.resize(h.binCount);
        for (std::size_t b = 0; b < h.binCount; b++)
            out.bins[b] = h.bins[b].load(std::memory_order_relaxed);
        out.total = h.total.load(std::memory_order_relaxed);
        out.sum = h.sum.load(std::memory_order_relaxed);
        snap.histograms[*histogramNames_[i]] = std::move(out);
    }
    return snap;
}

void
MetricsRegistry::resetValues()
{
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < counterCount_; i++)
        counters_[i].store(0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < gaugeCount_; i++)
        gauges_[i].store(0.0, std::memory_order_relaxed);
    for (std::size_t i = 0; i < histogramCount_; i++) {
        HistogramData &h = histograms_[i];
        for (std::size_t b = 0; b < h.binCount; b++)
            h.bins[b].store(0, std::memory_order_relaxed);
        h.total.store(0, std::memory_order_relaxed);
        h.sum.store(0.0, std::memory_order_relaxed);
    }
}

MetricsSnapshot
MetricsSnapshot::deltaFrom(const MetricsSnapshot &before) const
{
    MetricsSnapshot delta;
    for (const auto &[name, value] : counters) {
        auto it = before.counters.find(name);
        std::uint64_t base = it == before.counters.end() ? 0 : it->second;
        if (value != base)
            delta.counters[name] = value - base;
    }
    delta.gauges = gauges; // levels, not totals
    for (const auto &[name, h] : histograms) {
        auto it = before.histograms.find(name);
        Hist d = h;
        if (it != before.histograms.end()) {
            const Hist &b = it->second;
            if (b.bins.size() == d.bins.size()) {
                for (std::size_t i = 0; i < d.bins.size(); i++)
                    d.bins[i] -= b.bins[i];
                d.total -= b.total;
                d.sum -= b.sum;
            }
        }
        if (d.total != 0)
            delta.histograms[name] = std::move(d);
    }
    return delta;
}

void
MetricsSnapshot::writeJson(std::ostream &out) const
{
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters) {
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": " << value;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges) {
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": " << jsonDouble(value);
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out << (first ? "\n" : ",\n") << "    \"" << name
            << "\": {\"lo\": " << jsonDouble(h.lo)
            << ", \"hi\": " << jsonDouble(h.hi)
            << ", \"total\": " << h.total
            << ", \"sum\": " << jsonDouble(h.sum) << ", \"bins\": [";
        for (std::size_t i = 0; i < h.bins.size(); i++)
            out << (i ? ", " : "") << h.bins[i];
        out << "]}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace oceanstore
