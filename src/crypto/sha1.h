/**
 * @file
 * SHA-1 secure hash (FIPS 180-1), implemented from scratch.
 *
 * The paper's prototype uses SHA-1 for all secure hashing (footnote 3):
 * object GUIDs, server GUIDs, fragment GUIDs and the hierarchical
 * fragment-verification trees.  SHA-1 is cryptographically broken
 * today, but we reproduce the paper's choice faithfully; nothing in the
 * library depends on collision resistance beyond what the 2000-era
 * design assumed.
 */

#ifndef OCEANSTORE_CRYPTO_SHA1_H
#define OCEANSTORE_CRYPTO_SHA1_H

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace oceanstore {

/** A 160-bit SHA-1 digest. */
using Sha1Digest = std::array<std::uint8_t, 20>;

/**
 * Incremental SHA-1 hasher.
 *
 * Usage: construct, update() any number of times, then finish().
 * After finish() the object must not be reused.
 */
class Sha1
{
  public:
    Sha1();

    /** Absorb @p n bytes at @p data. */
    void update(const std::uint8_t *data, std::size_t n);

    /** Absorb a byte buffer. */
    void update(const Bytes &b) { update(b.data(), b.size()); }

    /** Absorb the raw characters of a string. */
    void update(std::string_view s);

    /** Apply padding and produce the final digest. */
    Sha1Digest finish();

    /** One-shot convenience: digest of a single buffer. */
    static Sha1Digest hash(const Bytes &b);

    /** One-shot convenience: digest of a string's characters. */
    static Sha1Digest hash(std::string_view s);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[5];
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
    std::uint64_t totalLen_;
};

/** Convert a digest to a Bytes buffer. */
Bytes digestToBytes(const Sha1Digest &d);

/** Lower-case hex encoding of a digest. */
std::string digestToHex(const Sha1Digest &d);

} // namespace oceanstore

#endif // OCEANSTORE_CRYPTO_SHA1_H
