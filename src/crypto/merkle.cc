#include "crypto/merkle.h"

#include <stdexcept>

namespace oceanstore {

Sha1Digest
MerkleTree::combine(const Sha1Digest &left, const Sha1Digest &right)
{
    Sha1 h;
    h.update(left.data(), left.size());
    h.update(right.data(), right.size());
    return h.finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes> &leaves)
{
    if (leaves.empty())
        throw std::invalid_argument("MerkleTree: no leaves");

    std::vector<Sha1Digest> level;
    level.reserve(leaves.size());
    for (const auto &leaf : leaves)
        level.push_back(Sha1::hash(leaf));
    levels_.push_back(level);

    while (levels_.back().size() > 1) {
        const auto &below = levels_.back();
        std::vector<Sha1Digest> above;
        above.reserve((below.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < below.size(); i += 2)
            above.push_back(combine(below[i], below[i + 1]));
        if (below.size() % 2 == 1)
            above.push_back(below.back()); // promote odd node
        levels_.push_back(std::move(above));
    }
}

MerklePath
MerkleTree::path(std::size_t index) const
{
    if (index >= numLeaves())
        throw std::out_of_range("MerkleTree::path: bad leaf index");

    MerklePath p;
    std::size_t pos = index;
    for (std::size_t lvl = 0; lvl + 1 < levels_.size(); lvl++) {
        const auto &level = levels_[lvl];
        std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
        if (sibling < level.size()) {
            p.push_back({level[sibling], pos % 2 == 1});
        }
        // When pos is the promoted odd node there is no sibling and
        // the hash passes upward unchanged; no step is recorded.
        pos /= 2;
        if (pos >= levels_[lvl + 1].size())
            pos = levels_[lvl + 1].size() - 1;
    }
    return p;
}

bool
MerkleTree::verify(const Bytes &leaf_data, const MerklePath &path,
                   const Sha1Digest &root)
{
    Sha1Digest h = Sha1::hash(leaf_data);
    for (const auto &step : path) {
        h = step.siblingOnLeft ? combine(step.sibling, h)
                               : combine(h, step.sibling);
    }
    return h == root;
}

} // namespace oceanstore
