/**
 * @file
 * Hierarchical fragment hashing (Section 4.5).
 *
 * "To preserve the erasure nature of the fragments ... we use a
 * hierarchical hashing method to verify each fragment.  We generate a
 * hash over each fragment, and recursively hash over the concatenation
 * of pairs of hashes to form a binary tree.  Each fragment is stored
 * along with the hashes neighboring its path to the root. ... We can
 * use the top-most hash as the GUID to the immutable archival object,
 * making every fragment in the archive completely self-verifying."
 */

#ifndef OCEANSTORE_CRYPTO_MERKLE_H
#define OCEANSTORE_CRYPTO_MERKLE_H

#include <cstdint>
#include <vector>

#include "crypto/guid.h"
#include "crypto/sha1.h"
#include "util/bytes.h"

namespace oceanstore {

/**
 * One step of a Merkle verification path: the sibling hash and which
 * side of the concatenation it sits on.
 */
struct MerkleStep
{
    Sha1Digest sibling;  //!< Hash of the neighbouring subtree.
    bool siblingOnLeft;  //!< True if sibling precedes us in the concat.

    bool operator==(const MerkleStep &) const = default;
};

/** A leaf-to-root verification path. */
using MerklePath = std::vector<MerkleStep>;

/**
 * Binary Merkle tree over a set of leaf buffers.
 *
 * Odd nodes at any level are promoted unchanged (no duplication), so
 * the tree is defined for any non-zero leaf count.
 */
class MerkleTree
{
  public:
    /** Build the tree over @p leaves (hashes each leaf buffer). */
    explicit MerkleTree(const std::vector<Bytes> &leaves);

    /** The top-most hash; used as the archival object's GUID. */
    const Sha1Digest &root() const { return levels_.back()[0]; }

    /** The root as a Guid. */
    Guid rootGuid() const { return Guid(root()); }

    /** Number of leaves. */
    std::size_t numLeaves() const { return levels_[0].size(); }

    /** Verification path for leaf @p index (the stored neighbours). */
    MerklePath path(std::size_t index) const;

    /**
     * Verify that @p leaf_data is the leaf at @p index of the tree
     * whose root is @p root, given its stored @p path.  Static: a
     * requesting machine can check a fragment with no other state,
     * which is what makes fragments self-verifying.
     */
    static bool verify(const Bytes &leaf_data, const MerklePath &path,
                       const Sha1Digest &root);

  private:
    static Sha1Digest combine(const Sha1Digest &left,
                              const Sha1Digest &right);

    /** levels_[0] = leaf hashes, levels_.back() = {root}. */
    std::vector<std::vector<Sha1Digest>> levels_;
};

} // namespace oceanstore

#endif // OCEANSTORE_CRYPTO_MERKLE_H
