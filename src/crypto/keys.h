/**
 * @file
 * Simulated public-key signatures (Sections 4.1, 4.2, 4.4.4).
 *
 * The paper requires that all writes be signed so servers can check
 * them against ACLs, and that the primary tier sign serialization
 * results.  The protocols only use the *semantics* of signatures —
 * verify(pub, msg, sign(priv, msg)) == true, unforgeability without
 * priv — plus their wire size; they never depend on a particular
 * number-theoretic construction.
 *
 * Substitution (documented in DESIGN.md): instead of RSA-era
 * public-key math, we model a key pair as (priv = random secret,
 * pub = SHA1(priv)) and a signature as SHA1(priv || msg).  Because a
 * verifier holds only pub, verification is performed through a
 * KeyRegistry, which plays the role of the signature-verification
 * *algorithm* in the simulation.  Within the simulation's threat
 * model, a node that never learns priv cannot forge signatures, which
 * is the property the protocols exercise.  Signature wire size is
 * padded to 128 bytes to model 1024-bit RSA signatures so that byte
 * accounting (Figure 6) stays realistic.
 */

#ifndef OCEANSTORE_CRYPTO_KEYS_H
#define OCEANSTORE_CRYPTO_KEYS_H

#include <cstdint>
#include <unordered_map>

#include "crypto/guid.h"
#include "util/bytes.h"
#include "util/random.h"

namespace oceanstore {

/** Wire size of a simulated signature, modelling 1024-bit RSA. */
constexpr std::size_t signatureWireSize = 128;

/** A simulated signing key pair. */
struct KeyPair
{
    Bytes publicKey;  //!< SHA1(privateKey); safe to publish.
    Bytes privateKey; //!< 20 random bytes; never enters messages.
};

/** A detached signature over a message. */
struct Signature
{
    Bytes bytes; //!< signatureWireSize octets; first 20 carry the MAC.

    bool operator==(const Signature &) const = default;
};

/**
 * Key generation and signature verification oracle.
 *
 * One registry exists per simulated universe.  generate() mints key
 * pairs; verify() checks a signature knowing only the public key (the
 * registry privately remembers the private half, standing in for the
 * public-key verification equation).
 */
class KeyRegistry
{
  public:
    explicit KeyRegistry(std::uint64_t seed = 0x4b455953u);

    /** Mint a fresh key pair and register it for verification. */
    KeyPair generate();

    /** Sign @p msg with a private key. */
    static Signature sign(const KeyPair &kp, const Bytes &msg);

    /**
     * Verify @p sig over @p msg against @p public_key.
     * Unknown public keys always fail.
     */
    bool verify(const Bytes &public_key, const Bytes &msg,
                const Signature &sig) const;

  private:
    Rng rng_;
    std::unordered_map<Guid, Bytes> privByPubHash_;
};

} // namespace oceanstore

#endif // OCEANSTORE_CRYPTO_KEYS_H
