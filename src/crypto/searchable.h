/**
 * @file
 * Search on encrypted data (Section 4.4.3, citing Song-Wagner-Perrig).
 *
 * The paper's most powerful ciphertext predicate is `search`: a server
 * can test whether an encrypted object contains a word, learning only
 * that a search happened and its boolean result — never the cleartext
 * of the search string, and the server cannot initiate searches on
 * its own.
 *
 * Substitution (documented in DESIGN.md): we implement a simplified
 * word-level scheme in the SWP spirit.  The client tokenizes the
 * plaintext, masks each word token with a per-position keystream, and
 * stores the masked tokens alongside the object.  To search, the
 * client issues a *trapdoor* for the word; the server slides the
 * trapdoor across the masked index and reports containment.  As in
 * SWP, the server learns only positions where the queried word occurs
 * and cannot synthesize trapdoors without the key.
 */

#ifndef OCEANSTORE_CRYPTO_SEARCHABLE_H
#define OCEANSTORE_CRYPTO_SEARCHABLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha1.h"
#include "util/bytes.h"

namespace oceanstore {

/** An encrypted, searchable word index for one object. */
struct SearchIndex
{
    /** Masked word tokens, one per word position. */
    std::vector<Sha1Digest> maskedTokens;
};

/** The trapdoor a client hands a server to test one word. */
struct SearchTrapdoor
{
    Sha1Digest wordToken; //!< PRF(key, word); reveals nothing else.
};

/**
 * Client-side searchable-encryption engine.
 *
 * Holds the symmetric search key.  Servers only ever see SearchIndex
 * and SearchTrapdoor values and run the static match() routine.
 */
class SearchableCipher
{
  public:
    /** Construct with a symmetric search key. */
    explicit SearchableCipher(Bytes key);

    /**
     * Build the masked index for a document (client side).
     * Words are whitespace-tokenized, lower-cased.
     */
    SearchIndex buildIndex(std::string_view document) const;

    /** Produce a trapdoor for @p word (client side). */
    SearchTrapdoor trapdoor(std::string_view word) const;

    /**
     * Server-side predicate: does the index contain the trapdoor's
     * word?  Needs no key material.
     */
    static bool match(const SearchIndex &index,
                      const SearchTrapdoor &trap);

    /** Positions at which the word occurs (server side). */
    static std::vector<std::size_t>
    matchPositions(const SearchIndex &index, const SearchTrapdoor &trap);

  private:
    Sha1Digest prf(std::string_view word) const;
    Sha1Digest positionMask(const Sha1Digest &token,
                            std::size_t position) const;

    Bytes key_;
};

/** Whitespace/punctuation word tokenizer shared with tests. */
std::vector<std::string> tokenizeWords(std::string_view document);

} // namespace oceanstore

#endif // OCEANSTORE_CRYPTO_SEARCHABLE_H
