/**
 * @file
 * Globally unique identifiers (Section 4.1).
 *
 * Every addressable OceanStore entity — object, server, archival
 * fragment, client — is identified by a GUID: a pseudo-random,
 * fixed-length (160-bit) bit string.  Object GUIDs are the secure hash
 * of the owner's public key and a human-readable name (self-certifying
 * names); server GUIDs are the hash of the server's public key; a
 * fragment GUID is the hash of the data it holds.
 */

#ifndef OCEANSTORE_CRYPTO_GUID_H
#define OCEANSTORE_CRYPTO_GUID_H

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "crypto/sha1.h"
#include "util/bytes.h"
#include "util/random.h"

namespace oceanstore {

/**
 * A 160-bit globally unique identifier.
 *
 * Provides the digit view used by the Plaxton/Tapestry-style routing
 * mesh (Section 4.3.3): the ID is interpreted as 40 hexadecimal digits
 * and routed one digit at a time starting from the *least* significant
 * digit, matching the paper's "lowest N-1 nibbles" construction.
 */
class Guid
{
  public:
    static constexpr std::size_t numBytes = 20;
    /** Bits per routing digit (one nibble, as in Figure 3). */
    static constexpr unsigned digitBits = 4;
    /** Number of routing digits in an ID. */
    static constexpr std::size_t numDigits = numBytes * 8 / digitBits;
    /** Number of distinct digit values (the routing-table fan-out). */
    static constexpr unsigned digitBase = 1u << digitBits;

    /** The all-zero GUID (used as a sentinel "no GUID"). */
    Guid() : bytes_{} {}

    /** Construct from a SHA-1 digest. */
    explicit Guid(const Sha1Digest &d);

    /** Hash arbitrary bytes into a GUID. */
    static Guid hashOf(const Bytes &data);

    /** Hash a string's characters into a GUID. */
    static Guid hashOf(std::string_view s);

    /**
     * Derive a self-certifying object GUID from the owner's public key
     * and a human-readable name (Section 4.1).  Any server can verify
     * the owner by recomputing the hash.
     */
    static Guid forObject(const Bytes &owner_pub_key,
                          std::string_view name);

    /** Server GUID: secure hash of the server's public key. */
    static Guid forServer(const Bytes &server_pub_key);

    /** Fragment GUID: secure hash over the fragment data. */
    static Guid forFragment(const Bytes &fragment_data);

    /** Uniformly random GUID from a deterministic generator. */
    static Guid random(Rng &rng);

    /** Parse 40 hex characters. @throws std::invalid_argument. */
    static Guid fromHex(std::string_view hex);

    /** Adopt exactly 20 raw bytes. @throws std::invalid_argument. */
    static Guid fromBytes(const Bytes &raw);

    /**
     * Salted variant: hash of this GUID concatenated with a salt value.
     * Used to derive multiple Plaxton roots per object so no single
     * root is a point of failure (Section 4.3.3).
     */
    Guid withSalt(std::uint32_t salt) const;

    /**
     * Routing digit @p i, counting from the least significant nibble
     * (digit 0 = low nibble of the last byte).
     */
    unsigned digit(std::size_t i) const;

    /**
     * Length of the common suffix (in digits) with @p other, i.e. the
     * number of consecutive matching digits starting at digit 0.
     */
    std::size_t matchingSuffix(const Guid &other) const;

    /**
     * Copy of this GUID with routing digit @p i replaced by @p value.
     * Used by surrogate routing when the exact next-digit neighbor
     * does not exist (Section 4.3.3).
     */
    Guid withDigit(std::size_t i, unsigned value) const;

    /** Raw bytes, big-endian (digit 0 lives in bytes()[19] & 0xf). */
    const std::array<std::uint8_t, numBytes> &bytes() const
    {
        return bytes_;
    }

    /** Copy into a Bytes buffer. */
    Bytes toBytes() const { return Bytes(bytes_.begin(), bytes_.end()); }

    /** Full 40-character hex form. */
    std::string hex() const;

    /** First 8 hex characters, for logs. */
    std::string shortHex() const;

    /** True unless this is the all-zero sentinel. */
    bool valid() const;

    /** Stable 64-bit hash (for unordered containers and Bloom seeds). */
    std::uint64_t hash64() const;

    auto operator<=>(const Guid &) const = default;

  private:
    std::array<std::uint8_t, numBytes> bytes_;
};

} // namespace oceanstore

/** std::hash support so Guid can key unordered containers. */
template <>
struct std::hash<oceanstore::Guid>
{
    std::size_t
    operator()(const oceanstore::Guid &g) const noexcept
    {
        return static_cast<std::size_t>(g.hash64());
    }
};

#endif // OCEANSTORE_CRYPTO_GUID_H
