#include "crypto/searchable.h"

#include <cctype>

namespace oceanstore {

SearchableCipher::SearchableCipher(Bytes key)
    : key_(std::move(key))
{
}

Sha1Digest
SearchableCipher::prf(std::string_view word) const
{
    Sha1 h;
    h.update(key_);
    h.update(std::string_view("\x01", 1));
    h.update(word);
    return h.finish();
}

Sha1Digest
SearchableCipher::positionMask(const Sha1Digest &token,
                               std::size_t position) const
{
    // Position mask depends only on the token and the position, so a
    // server holding a trapdoor (= token) can recompute it, but two
    // occurrences of the same word at different positions look
    // unrelated until that word is searched for.
    Sha1 h;
    h.update(token.data(), token.size());
    std::uint8_t pos[8];
    for (int i = 0; i < 8; i++)
        pos[i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(position) >> (56 - 8 * i));
    h.update(pos, sizeof(pos));
    return h.finish();
}

SearchIndex
SearchableCipher::buildIndex(std::string_view document) const
{
    SearchIndex index;
    auto words = tokenizeWords(document);
    index.maskedTokens.reserve(words.size());
    for (std::size_t i = 0; i < words.size(); i++)
        index.maskedTokens.push_back(positionMask(prf(words[i]), i));
    return index;
}

SearchTrapdoor
SearchableCipher::trapdoor(std::string_view word) const
{
    std::string lowered(word);
    for (char &c : lowered)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return SearchTrapdoor{prf(lowered)};
}

bool
SearchableCipher::match(const SearchIndex &index,
                        const SearchTrapdoor &trap)
{
    return !matchPositions(index, trap).empty();
}

std::vector<std::size_t>
SearchableCipher::matchPositions(const SearchIndex &index,
                                 const SearchTrapdoor &trap)
{
    // Server-side: recompute the position mask for the trapdoor token
    // at each position; no key material needed.
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < index.maskedTokens.size(); i++) {
        Sha1 h;
        h.update(trap.wordToken.data(), trap.wordToken.size());
        std::uint8_t pos[8];
        for (int k = 0; k < 8; k++)
            pos[k] = static_cast<std::uint8_t>(
                static_cast<std::uint64_t>(i) >> (56 - 8 * k));
        h.update(pos, sizeof(pos));
        if (h.finish() == index.maskedTokens[i])
            hits.push_back(i);
    }
    return hits;
}

std::vector<std::string>
tokenizeWords(std::string_view document)
{
    std::vector<std::string> words;
    std::string cur;
    for (char c : document) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            cur.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
        } else if (!cur.empty()) {
            words.push_back(cur);
            cur.clear();
        }
    }
    if (!cur.empty())
        words.push_back(cur);
    return words;
}

} // namespace oceanstore
