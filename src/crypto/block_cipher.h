/**
 * @file
 * Position-dependent block cipher (Section 4.4.2).
 *
 * The ciphertext update operations — compare-block, replace-block,
 * append, and the pointer-block insert/delete scheme of Figure 4 —
 * assume "the encryption technology is a position-dependent block
 * cipher": encrypting the same plaintext at the same (object, block
 * index) yields the same ciphertext, so a client can compute the hash
 * of an encrypted block without a server round-trip.
 *
 * Substitution (documented in DESIGN.md): we implement this as a
 * keyed, position-tweaked pseudo-random stream derived from SHA-1 in
 * counter mode, XOR-ed with the plaintext.  This gives exactly the
 * determinism-per-position contract the paper's ops rely on.  It is
 * *not* a modern AEAD — deterministic encryption leaks equality of
 * blocks, which the paper itself acknowledges ("this scheme leaks a
 * small amount of information").
 */

#ifndef OCEANSTORE_CRYPTO_BLOCK_CIPHER_H
#define OCEANSTORE_CRYPTO_BLOCK_CIPHER_H

#include <cstdint>

#include "crypto/sha1.h"
#include "util/bytes.h"

namespace oceanstore {

/**
 * Position-dependent symmetric cipher.
 *
 * Keystream for byte j of logical block i is byte (j mod 20) of
 * SHA1(key || i || j/20); encryption and decryption are both XOR with
 * that stream.
 */
class BlockCipher
{
  public:
    /** Construct with a symmetric read key (any length > 0). */
    explicit BlockCipher(Bytes key);

    /**
     * Encrypt @p plaintext as logical block @p block_index.
     * Deterministic: same key, index and plaintext give the same
     * ciphertext (required for compare-block, Section 4.4.3).
     */
    Bytes encrypt(std::uint64_t block_index, const Bytes &plaintext) const;

    /** Decrypt ciphertext produced by encrypt() at the same index. */
    Bytes decrypt(std::uint64_t block_index,
                  const Bytes &ciphertext) const;

    /** The read key this cipher was constructed with. */
    const Bytes &key() const { return key_; }

  private:
    Bytes xorStream(std::uint64_t block_index, const Bytes &in) const;

    Bytes key_;
};

} // namespace oceanstore

#endif // OCEANSTORE_CRYPTO_BLOCK_CIPHER_H
