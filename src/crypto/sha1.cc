#include "crypto/sha1.h"

#include <cstring>

#include "util/check.h"

namespace oceanstore {

namespace {

std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

} // namespace

Sha1::Sha1()
    : bufferLen_(0), totalLen_(0)
{
    h_[0] = 0x67452301u;
    h_[1] = 0xefcdab89u;
    h_[2] = 0x98badcfeu;
    h_[3] = 0x10325476u;
    h_[4] = 0xc3d2e1f0u;
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; i++) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; i++)
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];

    for (int i = 0; i < 80; i++) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const std::uint8_t *data, std::size_t n)
{
    totalLen_ += n;
    while (n > 0) {
        std::size_t take = std::min(n, sizeof(buffer_) - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        n -= take;
        if (bufferLen_ == sizeof(buffer_)) {
            processBlock(buffer_);
            bufferLen_ = 0;
        }
    }
}

void
Sha1::update(std::string_view s)
{
    update(reinterpret_cast<const std::uint8_t *>(s.data()), s.size());
}

Sha1Digest
Sha1::finish()
{
    std::uint64_t bit_len = totalLen_ * 8;

    // Append the 0x80 terminator, then zero-pad so 8 bytes remain for
    // the length field in the final block.
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    std::uint8_t zero = 0x00;
    while (bufferLen_ != 56)
        update(&zero, 1);

    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; i++)
        len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Bypass update() so totalLen_ bookkeeping is irrelevant now.
    OS_DCHECK(bufferLen_ == 56, "SHA-1 padding left bufferLen_=",
              bufferLen_);
    std::memcpy(buffer_ + bufferLen_, len_bytes, 8);
    processBlock(buffer_);

    Sha1Digest out;
    for (int i = 0; i < 5; i++) {
        out[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
        out[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
        out[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
        out[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
    }
    return out;
}

Sha1Digest
Sha1::hash(const Bytes &b)
{
    Sha1 s;
    s.update(b);
    return s.finish();
}

Sha1Digest
Sha1::hash(std::string_view str)
{
    Sha1 s;
    s.update(str);
    return s.finish();
}

Bytes
digestToBytes(const Sha1Digest &d)
{
    return Bytes(d.begin(), d.end());
}

std::string
digestToHex(const Sha1Digest &d)
{
    return hexEncode(digestToBytes(d));
}

} // namespace oceanstore
