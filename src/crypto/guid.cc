#include "crypto/guid.h"

#include <stdexcept>

#include "util/check.h"

namespace oceanstore {

Guid::Guid(const Sha1Digest &d)
{
    std::copy(d.begin(), d.end(), bytes_.begin());
}

Guid
Guid::hashOf(const Bytes &data)
{
    return Guid(Sha1::hash(data));
}

Guid
Guid::hashOf(std::string_view s)
{
    return Guid(Sha1::hash(s));
}

Guid
Guid::forObject(const Bytes &owner_pub_key, std::string_view name)
{
    Sha1 h;
    h.update(owner_pub_key);
    h.update(std::string_view("\x00", 1)); // domain separator
    h.update(name);
    return Guid(h.finish());
}

Guid
Guid::forServer(const Bytes &server_pub_key)
{
    return hashOf(server_pub_key);
}

Guid
Guid::forFragment(const Bytes &fragment_data)
{
    return hashOf(fragment_data);
}

Guid
Guid::random(Rng &rng)
{
    Guid g;
    for (std::size_t i = 0; i < numBytes; i += 8) {
        std::uint64_t v = rng.next();
        for (std::size_t j = 0; j < 8 && i + j < numBytes; j++)
            g.bytes_[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
    return g;
}

Guid
Guid::fromHex(std::string_view hex)
{
    Bytes b = hexDecode(hex);
    if (b.size() != numBytes)
        throw std::invalid_argument("Guid::fromHex: need 40 hex chars");
    Guid g;
    std::copy(b.begin(), b.end(), g.bytes_.begin());
    return g;
}

Guid
Guid::fromBytes(const Bytes &raw)
{
    if (raw.size() != numBytes)
        throw std::invalid_argument("Guid::fromBytes: need 20 bytes");
    Guid g;
    std::copy(raw.begin(), raw.end(), g.bytes_.begin());
    return g;
}

Guid
Guid::withSalt(std::uint32_t salt) const
{
    Sha1 h;
    h.update(bytes_.data(), bytes_.size());
    std::uint8_t s[4] = {
        static_cast<std::uint8_t>(salt >> 24),
        static_cast<std::uint8_t>(salt >> 16),
        static_cast<std::uint8_t>(salt >> 8),
        static_cast<std::uint8_t>(salt),
    };
    h.update(s, 4);
    return Guid(h.finish());
}

unsigned
Guid::digit(std::size_t i) const
{
    OS_DCHECK(i < numDigits, "Guid::digit(", i, ")");
    // Digit 0 is the least significant nibble: low nibble of the last
    // byte.  Digit 1 is the high nibble of the last byte, and so on.
    std::size_t byte_index = numBytes - 1 - i / 2;
    std::uint8_t b = bytes_[byte_index];
    return (i % 2 == 0) ? (b & 0xf) : (b >> 4);
}

Guid
Guid::withDigit(std::size_t i, unsigned value) const
{
    OS_DCHECK(i < numDigits, "Guid::withDigit(", i, ")");
    OS_DCHECK(value < digitBase, "Guid::withDigit: value ", value);
    Guid g = *this;
    std::size_t byte_index = numBytes - 1 - i / 2;
    std::uint8_t b = g.bytes_[byte_index];
    if (i % 2 == 0)
        b = static_cast<std::uint8_t>((b & 0xf0) | (value & 0xf));
    else
        b = static_cast<std::uint8_t>((b & 0x0f) | ((value & 0xf) << 4));
    g.bytes_[byte_index] = b;
    return g;
}

std::size_t
Guid::matchingSuffix(const Guid &other) const
{
    std::size_t n = 0;
    while (n < numDigits && digit(n) == other.digit(n))
        n++;
    return n;
}

std::string
Guid::hex() const
{
    return hexEncode(toBytes());
}

std::string
Guid::shortHex() const
{
    return hex().substr(0, 8);
}

bool
Guid::valid() const
{
    for (auto b : bytes_) {
        if (b != 0)
            return true;
    }
    return false;
}

std::uint64_t
Guid::hash64() const
{
    // The GUID is already a uniform hash; fold the first 8 bytes.
    std::uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v = (v << 8) | bytes_[i];
    return v;
}

} // namespace oceanstore
