#include "crypto/block_cipher.h"

#include <stdexcept>

namespace oceanstore {

BlockCipher::BlockCipher(Bytes key)
    : key_(std::move(key))
{
    if (key_.empty())
        throw std::invalid_argument("BlockCipher: empty key");
}

Bytes
BlockCipher::xorStream(std::uint64_t block_index, const Bytes &in) const
{
    Bytes out(in.size());
    Sha1Digest pad{};
    for (std::size_t j = 0; j < in.size(); j++) {
        if (j % 20 == 0) {
            Sha1 h;
            h.update(key_);
            std::uint8_t ctr[16];
            std::uint64_t chunk = j / 20;
            for (int k = 0; k < 8; k++) {
                ctr[k] = static_cast<std::uint8_t>(
                    block_index >> (56 - 8 * k));
                ctr[8 + k] = static_cast<std::uint8_t>(
                    chunk >> (56 - 8 * k));
            }
            h.update(ctr, sizeof(ctr));
            pad = h.finish();
        }
        out[j] = in[j] ^ pad[j % 20];
    }
    return out;
}

Bytes
BlockCipher::encrypt(std::uint64_t block_index, const Bytes &plaintext)
    const
{
    return xorStream(block_index, plaintext);
}

Bytes
BlockCipher::decrypt(std::uint64_t block_index, const Bytes &ciphertext)
    const
{
    return xorStream(block_index, ciphertext);
}

} // namespace oceanstore
