#include "crypto/keys.h"

namespace oceanstore {

KeyRegistry::KeyRegistry(std::uint64_t seed)
    : rng_(seed)
{
}

KeyPair
KeyRegistry::generate()
{
    KeyPair kp;
    kp.privateKey.resize(20);
    for (std::size_t i = 0; i < kp.privateKey.size(); i += 8) {
        std::uint64_t v = rng_.next();
        for (std::size_t j = 0; j < 8 && i + j < kp.privateKey.size(); j++)
            kp.privateKey[i + j] = static_cast<std::uint8_t>(v >> (8 * j));
    }
    kp.publicKey = digestToBytes(Sha1::hash(kp.privateKey));
    privByPubHash_[Guid::hashOf(kp.publicKey)] = kp.privateKey;
    return kp;
}

Signature
KeyRegistry::sign(const KeyPair &kp, const Bytes &msg)
{
    Sha1 h;
    h.update(kp.privateKey);
    h.update(msg);
    Sha1Digest mac = h.finish();

    Signature sig;
    sig.bytes.assign(signatureWireSize, 0);
    std::copy(mac.begin(), mac.end(), sig.bytes.begin());
    return sig;
}

bool
KeyRegistry::verify(const Bytes &public_key, const Bytes &msg,
                    const Signature &sig) const
{
    auto it = privByPubHash_.find(Guid::hashOf(public_key));
    if (it == privByPubHash_.end())
        return false;
    if (sig.bytes.size() != signatureWireSize)
        return false;

    Sha1 h;
    h.update(it->second);
    h.update(msg);
    Sha1Digest mac = h.finish();
    return std::equal(mac.begin(), mac.end(), sig.bytes.begin());
}

} // namespace oceanstore
