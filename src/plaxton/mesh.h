/**
 * @file
 * The global data location mesh (Section 4.3.3, Figure 3).
 *
 * A highly redundant variant of the Plaxton/Rajaraman/Richa randomized
 * hierarchical distributed data structure.  Every server holds a
 * routing table of neighbor links organized by level: the level-N
 * links of node X point at the closest nodes whose IDs match the
 * lowest N-1 digits of X's ID with every possible value of digit N
 * (one of which is always a loopback link).  Messages route toward a
 * GUID by resolving one digit per hop; surrogate routing (scanning to
 * the next occupied digit) makes the mapping GUID -> root node total
 * and globally consistent.
 *
 * OceanStore-specific extensions implemented here, all from the paper:
 *  - salted GUID hashing for replicated roots (no single point of
 *    failure, DoS resistance);
 *  - redundant backup neighbors per table entry;
 *  - pointer deposit on publish and early-exit lookup on locate;
 *  - online node insertion and removal with table repair;
 *  - soft-state republish so pointers survive server loss.
 */

#ifndef OCEANSTORE_PLAXTON_MESH_H
#define OCEANSTORE_PLAXTON_MESH_H

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/guid.h"
#include "runtime/runtime.h"
#include "sim/topology.h"
#include "storage/backend.h"
#include "util/random.h"
#include "util/stats.h"

namespace oceanstore {

/** Tunables for the mesh. */
struct PlaxtonConfig
{
    /** Routing levels maintained (enough for ~16^8 nodes). */
    unsigned levels = 8;
    /** Backup neighbors kept per (level, digit) entry. */
    unsigned redundancy = 2;
    /** Salt values per GUID: number of replicated roots. */
    unsigned numSalts = 3;
};

/** Result of routing toward a GUID. */
struct RouteResult
{
    std::vector<NodeId> path; //!< Mesh nodes visited (starts at source).
    NodeId root = invalidNode; //!< Final node (the GUID's root).
    double latency = 0.0;     //!< Sum of link latencies along the path.
    bool failed = false;      //!< Progress became impossible (failures).
};

/** Result of a locate() operation. */
struct LocateResult
{
    bool found = false;
    NodeId location = invalidNode; //!< Server hosting a replica.
    unsigned hops = 0;             //!< Mesh hops before the pointer hit.
    double latency = 0.0;          //!< Mesh latency + final direct hop.
    unsigned saltUsed = 0;         //!< Which replicated root answered.
};

/**
 * The distributed mesh, simulated with per-node routing tables over a
 * Runtime that supplies inter-node latencies.
 *
 * Node insertion and removal use the library's recursive need-to-know
 * algorithms; the acknowledged-multicast discovery step of the real
 * system is stood in for by bucket scans over the simulator's global
 * state (documented in DESIGN.md), while the *resulting table
 * invariants* — what the experiments depend on — are maintained
 * exactly.
 */
class PlaxtonMesh
{
  public:
    /**
     * Build a mesh over @p members, which must already be registered
     * with @p net (their NodeIds are used for latency queries).
     * Node GUIDs are assigned pseudo-randomly from @p rng.
     */
    PlaxtonMesh(Runtime &rt, const std::vector<NodeId> &members,
                Rng &rng, PlaxtonConfig cfg = {});

    /** The mesh-assigned GUID of member @p n. */
    const Guid &guidOf(NodeId n) const;

    /** True when the mesh considers @p n alive. */
    bool alive(NodeId n) const;

    /**
     * Route from @p from toward @p target, using surrogate routing.
     * Dead next-hops fall back to backup links, then to other digits.
     */
    RouteResult route(NodeId from, const Guid &target) const;

    /** The root node for @p g (no salting applied). */
    NodeId rootOf(const Guid &g) const;

    /**
     * Publish: object @p g is stored on @p storer.  Routes to each of
     * the numSalts salted roots, depositing a location pointer at
     * every hop (Section 4.3.3 "publishing").
     * @return mesh hops used (for maintenance accounting).
     */
    unsigned publish(const Guid &g, NodeId storer);

    /** Remove @p storer's pointers for @p g along all salted paths. */
    void unpublish(const Guid &g, NodeId storer);

    /**
     * Locate a replica of @p g starting from @p from: climb toward the
     * salted roots, exiting early at the first deposited pointer; the
     * final step routes directly (IP) to the chosen replica.  Salt 0
     * is tried first; later salts only on failure.
     */
    LocateResult locate(NodeId from, const Guid &g) const;

    /**
     * Locate using only salt @p salt (for the single-root ablation;
     * pass 0 and configure numSalts=1 for the paper's baseline).
     */
    LocateResult locateWithSalt(NodeId from, const Guid &g,
                                unsigned salt) const;

    /**
     * Online insertion of a new member (must be registered with the
     * network).  Builds its routing table by routing toward its own
     * ID and copying/optimizing level tables, then updates the tables
     * of nodes that need to know about it.
     */
    void insertNode(NodeId n, const Guid &id);

    /**
     * Remove a node (crash or decommission).  Its pointers vanish;
     * other nodes repair table entries from backups.
     */
    void removeNode(NodeId n);

    /**
     * Re-admit a removed member after a crash/restart cycle: rebuild
     * its routing table under its durable GUID, announce it to nodes
     * that need to know, and reload the pointer cache persisted in its
     * "ptr/" storage namespace (via storageHook).  Stale entries —
     * pointers to storers that died while this node was down — are
     * filtered at locate time and purged by the next repair sweep,
     * exactly like ordinary soft-state decay.
     * @return pointers reloaded from storage.
     */
    std::size_t restoreNode(NodeId n);

    /**
     * Durable pointer write-through hook (DESIGN.md section 14): maps
     * a member to its running storage backend, or null for the
     * historical RAM-only behavior (also return null while the node
     * is crashed).  Set by the Universe before any publish traffic.
     */
    std::function<StorageBackend *(NodeId)> storageHook;

    /**
     * Soft-state repair sweep: every alive storer republishes its
     * objects, restoring pointers lost to failed nodes, and every
     * node replaces dead table entries (Section 4.3.3
     * "maintenance-free operation").
     */
    void repair();

    /** What one beacon sweep observed and did. */
    struct BeaconReport
    {
        unsigned suspects = 0;    //!< Newly suspected (first miss).
        unsigned evicted = 0;     //!< Removed after a second miss.
        unsigned reinstated = 0;  //!< Suspects that answered again.
    };

    /**
     * Soft-state beacon sweep with a second-chance algorithm
     * (Section 4.3.3): a member that misses one beacon becomes
     * *suspect* — routed around, but its table entries and pointers
     * are kept; a suspect that misses a second consecutive beacon is
     * evicted (removeNode); a suspect that answers again is
     * reinstated at no recovery cost.
     */
    BeaconReport beaconSweep();

    /** True when @p n is currently under suspicion. */
    bool isSuspect(NodeId n) const { return suspects_.count(n) > 0; }

    /** All objects published by @p storer (for repair sweeps). */
    std::vector<Guid> objectsPublishedBy(NodeId storer) const;

    /** Member NodeIds (alive and dead). */
    const std::vector<NodeId> &members() const { return members_; }

    /** Maintenance counters: publishes, repairs, hops. */
    const Counters &counters() const { return counters_; }

  private:
    struct Entry
    {
        /** Primary plus backup neighbors, closest first. */
        std::vector<NodeId> candidates;
    };

    struct NodeState
    {
        Guid id;
        bool alive = true;
        /** table[level][digit]. */
        std::vector<std::vector<Entry>> table;
        /** Location pointers: object GUID -> storers.  Ordered so
         *  repair sweeps visit pointers deterministically. */
        std::map<Guid, std::set<NodeId>> pointers;
    };

    /** Index into states_ for a NodeId. */
    std::size_t indexOf(NodeId n) const;

    /** Fill (or refill) one node's entire routing table. */
    void buildTable(std::size_t idx);

    /** Insert @p idx into other nodes' tables where it qualifies. */
    void announce(std::size_t idx);

    /** Pick the best alive candidate of an entry, or invalidNode. */
    NodeId aliveCandidate(const Entry &e) const;

    /** Deposit pointers along the path to one salted root. */
    unsigned publishOne(const Guid &salted, const Guid &g, NodeId storer);

    /** Storage key of one deposited pointer. */
    static std::string pointerKey(const Guid &g, NodeId storer);

    /** Write-through of a pointer deposit on member @p n. */
    void persistPointer(NodeId n, const Guid &g, NodeId storer);

    /** Write-through of a pointer removal on member @p n. */
    void unpersistPointer(NodeId n, const Guid &g, NodeId storer);

    Runtime &rt_;
    PlaxtonConfig cfg_;
    std::vector<NodeId> members_;
    std::unordered_map<NodeId, std::size_t> index_;
    std::vector<NodeState> states_;
    /** storer -> object GUIDs it has published (drives repair).
     *  Ordered: repair republishes in iteration order, which feeds
     *  message emission and must be deterministic. */
    std::map<NodeId, std::set<Guid>> published_;
    /** Members that missed the last beacon (second-chance state). */
    std::set<NodeId> suspects_;
    Counters counters_;
};

} // namespace oceanstore

#endif // OCEANSTORE_PLAXTON_MESH_H
