#include "plaxton/mesh.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct PlaxtonMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id lookups, lookupsFailed, publishes, repairs;
    MetricsRegistry::Id lookupHops; //!< histogram

    PlaxtonMetricIds()
        : reg(&MetricsRegistry::global()),
          lookups(reg->counter("plaxton.lookups")),
          lookupsFailed(reg->counter("plaxton.lookups_failed")),
          publishes(reg->counter("plaxton.publishes")),
          repairs(reg->counter("plaxton.table_repairs")),
          lookupHops(
              reg->histogram("plaxton.lookup_hops", 0.0, 16.0, 16))
    {
    }
};

PlaxtonMetricIds &
plaxtonMetrics()
{
    static PlaxtonMetricIds ids;
    return ids;
}

} // namespace

PlaxtonMesh::PlaxtonMesh(Runtime &rt, const std::vector<NodeId> &members,
                         Rng &rng, PlaxtonConfig cfg)
    : rt_(rt), cfg_(cfg), members_(members)
{
    states_.resize(members_.size());
    for (std::size_t i = 0; i < members_.size(); i++) {
        index_[members_[i]] = i;
        states_[i].id = Guid::random(rng);
        states_[i].alive = true;
    }
    for (std::size_t i = 0; i < members_.size(); i++)
        buildTable(i);
    OS_CHECK(index_.size() == members_.size(),
             "PlaxtonMesh: duplicate member NodeIds");
}

std::size_t
PlaxtonMesh::indexOf(NodeId n) const
{
    auto it = index_.find(n);
    if (it == index_.end())
        fatal("PlaxtonMesh: node is not a member");
    return it->second;
}

const Guid &
PlaxtonMesh::guidOf(NodeId n) const
{
    return states_[indexOf(n)].id;
}

bool
PlaxtonMesh::alive(NodeId n) const
{
    auto it = index_.find(n);
    if (it == index_.end())
        return false;
    return states_[it->second].alive && rt_.isUp(n);
}

void
PlaxtonMesh::buildTable(std::size_t idx)
{
    NodeState &st = states_[idx];
    NodeId self = members_[idx];

    st.table.assign(cfg_.levels,
                    std::vector<Entry>(Guid::digitBase));

    // Scan all members once; each contributes candidates for levels
    // 0..min(matching suffix, levels-1) in its own digit column.
    for (std::size_t j = 0; j < members_.size(); j++) {
        const NodeState &other = states_[j];
        if (!other.alive)
            continue;
        std::size_t m = st.id.matchingSuffix(other.id);
        std::size_t max_lvl = std::min<std::size_t>(m, cfg_.levels - 1);
        for (std::size_t lvl = 0; lvl <= max_lvl; lvl++) {
            unsigned d = other.id.digit(lvl);
            st.table[lvl][d].candidates.push_back(members_[j]);
        }
    }

    // Keep the 1 + redundancy closest candidates per entry; "closest"
    // is with respect to the underlying IP latency (footnote 5).
    for (auto &level : st.table) {
        for (auto &entry : level) {
            auto &c = entry.candidates;
            std::sort(c.begin(), c.end(), [&](NodeId a, NodeId b) {
                double la = rt_.latency(self, a);
                double lb = rt_.latency(self, b);
                if (la != lb)
                    return la < lb;
                return a < b;
            });
            if (c.size() > 1 + cfg_.redundancy)
                c.resize(1 + cfg_.redundancy);
        }
    }
}

NodeId
PlaxtonMesh::aliveCandidate(const Entry &e) const
{
    for (NodeId n : e.candidates) {
        if (alive(n))
            return n;
    }
    return invalidNode;
}

RouteResult
PlaxtonMesh::route(NodeId from, const Guid &target) const
{
    RouteResult res;
    res.path.push_back(from);

    if (!alive(from)) {
        res.failed = true;
        return res;
    }

    std::size_t cur = indexOf(from);
    Guid eff = target;

    for (;;) {
        const NodeState &st = states_[cur];
        NodeId cur_node = members_[cur];
        std::size_t l = st.id.matchingSuffix(eff);
        if (l >= cfg_.levels) {
            res.root = cur_node;
            return res;
        }

        // Surrogate routing: scan digit values upward from the target
        // digit until an entry with an alive candidate is found.  The
        // loopback entry (our own digit) always qualifies, so the
        // scan always terminates.
        bool advanced = false;
        for (unsigned k = 0; k < Guid::digitBase; k++) {
            unsigned d = (eff.digit(l) + k) % Guid::digitBase;
            NodeId cand = aliveCandidate(st.table[l][d]);
            if (cand == invalidNode)
                continue;
            if (d != eff.digit(l))
                eff = eff.withDigit(l, d); // surrogate substitution
            if (cand != cur_node) {
                res.latency += rt_.latency(cur_node, cand);
                res.path.push_back(cand);
                cur = indexOf(cand);
            }
            // When cand == cur_node the digit resolves in place and
            // the suffix match grows on the next iteration.
            advanced = true;
            break;
        }
        if (!advanced) {
            // Every candidate at this level is dead: no further
            // progress is possible; we are the (degraded) root.
            res.root = members_[cur];
            res.failed = true;
            return res;
        }
    }
}

NodeId
PlaxtonMesh::rootOf(const Guid &g) const
{
    for (NodeId n : members_) {
        if (alive(n))
            return route(n, g).root;
    }
    return invalidNode;
}

std::string
PlaxtonMesh::pointerKey(const Guid &g, NodeId storer)
{
    return "ptr/" + g.hex() + "/" + std::to_string(storer);
}

void
PlaxtonMesh::persistPointer(NodeId n, const Guid &g, NodeId storer)
{
    if (!storageHook)
        return;
    if (StorageBackend *sb = storageHook(n))
        sb->put(pointerKey(g, storer), Bytes{});
}

void
PlaxtonMesh::unpersistPointer(NodeId n, const Guid &g, NodeId storer)
{
    if (!storageHook)
        return;
    if (StorageBackend *sb = storageHook(n))
        sb->erase(pointerKey(g, storer));
}

unsigned
PlaxtonMesh::publishOne(const Guid &salted, const Guid &g, NodeId storer)
{
    RouteResult r = route(storer, salted);
    for (NodeId n : r.path) {
        if (states_[indexOf(n)].pointers[g].insert(storer).second)
            persistPointer(n, g, storer);
    }
    counters_.bump("publish.hops", r.path.size() - 1);
    return static_cast<unsigned>(r.path.size() - 1);
}

unsigned
PlaxtonMesh::publish(const Guid &g, NodeId storer)
{
    unsigned hops = 0;
    for (unsigned s = 0; s < cfg_.numSalts; s++)
        hops += publishOne(g.withSalt(s), g, storer);
    published_[storer].insert(g);
    counters_.bump("publish.count");
    {
        PlaxtonMetricIds &pm = plaxtonMetrics();
        pm.reg->inc(pm.publishes);
    }
    return hops;
}

void
PlaxtonMesh::unpublish(const Guid &g, NodeId storer)
{
    for (unsigned s = 0; s < cfg_.numSalts; s++) {
        RouteResult r = route(storer, g.withSalt(s));
        for (NodeId n : r.path) {
            auto &ptrs = states_[indexOf(n)].pointers;
            auto it = ptrs.find(g);
            if (it != ptrs.end()) {
                if (it->second.erase(storer) > 0)
                    unpersistPointer(n, g, storer);
                if (it->second.empty())
                    ptrs.erase(it);
            }
        }
    }
    auto it = published_.find(storer);
    if (it != published_.end()) {
        it->second.erase(g);
        if (it->second.empty())
            published_.erase(it);
    }
}

LocateResult
PlaxtonMesh::locateWithSalt(NodeId from, const Guid &g,
                            unsigned salt) const
{
    LocateResult res;
    RouteResult r = route(from, g.withSalt(salt));
    res.saltUsed = salt;

    double lat = 0.0;
    for (std::size_t i = 0; i < r.path.size(); i++) {
        if (i > 0)
            lat += rt_.latency(r.path[i - 1], r.path[i]);
        const NodeState &st = states_[indexOf(r.path[i])];
        auto it = st.pointers.find(g);
        if (it == st.pointers.end())
            continue;
        // Choose the closest alive storer advertised here.
        NodeId best = invalidNode;
        double best_lat = 0.0;
        for (NodeId storer : it->second) {
            if (!alive(storer))
                continue;
            double dl = rt_.latency(r.path[i], storer);
            if (best == invalidNode || dl < best_lat) {
                best = storer;
                best_lat = dl;
            }
        }
        if (best == invalidNode)
            continue;
        res.found = true;
        res.location = best;
        res.hops = static_cast<unsigned>(i);
        res.latency = lat + (best == r.path[i] ? 0.0 : best_lat);
        return res;
    }
    res.latency = lat;
    res.hops = static_cast<unsigned>(
        r.path.empty() ? 0 : r.path.size() - 1);
    return res;
}

LocateResult
PlaxtonMesh::locate(NodeId from, const Guid &g) const
{
    PlaxtonMetricIds &pm = plaxtonMetrics();
    pm.reg->inc(pm.lookups);
    double wasted = 0.0;
    for (unsigned s = 0; s < cfg_.numSalts; s++) {
        LocateResult res = locateWithSalt(from, g, s);
        if (res.found) {
            res.latency += wasted; // earlier failed salt attempts
            pm.reg->observe(pm.lookupHops,
                            static_cast<double>(res.hops));
            return res;
        }
        wasted += res.latency;
    }
    pm.reg->inc(pm.lookupsFailed);
    LocateResult res;
    res.latency = wasted;
    return res;
}

void
PlaxtonMesh::insertNode(NodeId n, const Guid &id)
{
    if (index_.count(n))
        fatal("PlaxtonMesh::insertNode: already a member");
    std::size_t idx = states_.size();
    members_.push_back(n);
    index_[n] = idx;
    NodeState st;
    st.id = id;
    st.alive = true;
    states_.push_back(std::move(st));

    buildTable(idx);
    announce(idx);
    counters_.bump("insert.count");
}

void
PlaxtonMesh::announce(std::size_t idx)
{
    const Guid &id = states_[idx].id;
    NodeId self = members_[idx];

    for (std::size_t j = 0; j < states_.size(); j++) {
        if (j == idx || !states_[j].alive)
            continue;
        NodeState &other = states_[j];
        NodeId other_node = members_[j];
        std::size_t m = other.id.matchingSuffix(id);
        std::size_t max_lvl = std::min<std::size_t>(m, cfg_.levels - 1);
        for (std::size_t lvl = 0; lvl <= max_lvl; lvl++) {
            unsigned d = id.digit(lvl);
            auto &c = other.table[lvl][d].candidates;
            if (std::find(c.begin(), c.end(), self) != c.end())
                continue;
            c.push_back(self);
            std::sort(c.begin(), c.end(), [&](NodeId a, NodeId b) {
                double la = rt_.latency(other_node, a);
                double lb = rt_.latency(other_node, b);
                if (la != lb)
                    return la < lb;
                return a < b;
            });
            if (c.size() > 1 + cfg_.redundancy)
                c.resize(1 + cfg_.redundancy);
            counters_.bump("insert.table_updates");
        }
    }
}

void
PlaxtonMesh::removeNode(NodeId n)
{
    std::size_t idx = indexOf(n);
    states_[idx].alive = false;
    // A removed server loses its soft state: deposited pointers and
    // its own publications (its replicas are gone).  The durable
    // "ptr/" records on its own disk are deliberately left alone —
    // restoreNode() reloads them after a crash/restart cycle.
    states_[idx].pointers.clear();
    published_.erase(n);
    counters_.bump("remove.count");
}

std::size_t
PlaxtonMesh::restoreNode(NodeId n)
{
    std::size_t idx = indexOf(n);
    NodeState &st = states_[idx];
    OS_CHECK(!st.alive, "PlaxtonMesh::restoreNode(", n,
             "): member was never removed");
    st.alive = true;
    buildTable(idx);
    announce(idx);

    // Reload the durable pointer cache.  Keys are
    // "ptr/<40 hex digits>/<storer>"; anything unparsable is a
    // storage-layer bug, so fail loudly rather than skip.
    st.pointers.clear();
    std::size_t reloaded = 0;
    if (storageHook) {
        if (StorageBackend *sb = storageHook(n)) {
            sb->scan("ptr/", [&](const std::string &key, const Bytes &) {
                OS_CHECK(key.size() > 4 + Guid::numDigits + 1,
                         "mesh restore: malformed pointer key '", key,
                         "'");
                Guid g = Guid::fromHex(
                    std::string_view(key).substr(4, Guid::numDigits));
                NodeId storer = static_cast<NodeId>(
                    std::stoull(key.substr(4 + Guid::numDigits + 1)));
                st.pointers[g].insert(storer);
                reloaded++;
            });
        }
    }
    counters_.bump("restore.count");
    counters_.bump("restore.pointers", reloaded);
    return reloaded;
}

void
PlaxtonMesh::repair()
{
    // 1. Purge dead candidates and refill routing tables.
    for (std::size_t i = 0; i < states_.size(); i++) {
        if (!states_[i].alive || !rt_.isUp(members_[i]))
            continue;
        buildTable(i);
        counters_.bump("repair.tables");
        {
            PlaxtonMetricIds &pm = plaxtonMetrics();
            pm.reg->inc(pm.repairs);
        }
    }
    // 2. Drop pointers that reference dead storers.
    for (std::size_t i = 0; i < states_.size(); i++) {
        NodeState &st = states_[i];
        if (!st.alive)
            continue;
        for (auto it = st.pointers.begin(); it != st.pointers.end();) {
            for (auto sit = it->second.begin();
                 sit != it->second.end();) {
                if (!alive(*sit)) {
                    unpersistPointer(members_[i], it->first, *sit);
                    sit = it->second.erase(sit);
                } else {
                    ++sit;
                }
            }
            if (it->second.empty())
                it = st.pointers.erase(it);
            else
                ++it;
        }
    }
    // 3. Every alive storer slowly repeats the publishing process
    //    (Section 4.3.3), restoring pointers on the repaired mesh.
    auto snapshot = published_;
    for (const auto &[storer, objs] : snapshot) {
        if (!alive(storer))
            continue;
        for (const Guid &g : objs) {
            for (unsigned s = 0; s < cfg_.numSalts; s++)
                publishOne(g.withSalt(s), g, storer);
            counters_.bump("repair.republish");
        }
    }
}

PlaxtonMesh::BeaconReport
PlaxtonMesh::beaconSweep()
{
    BeaconReport report;
    for (std::size_t i = 0; i < states_.size(); i++) {
        if (!states_[i].alive)
            continue; // already evicted
        NodeId n = members_[i];
        bool answered = rt_.isUp(n);
        bool suspect = suspects_.count(n) > 0;
        if (answered && suspect) {
            // Second chance paid off: full state retained.
            suspects_.erase(n);
            report.reinstated++;
            counters_.bump("beacon.reinstated");
        } else if (!answered && !suspect) {
            suspects_.insert(n);
            report.suspects++;
            counters_.bump("beacon.suspected");
        } else if (!answered && suspect) {
            // Two consecutive misses: really gone.
            suspects_.erase(n);
            removeNode(n);
            report.evicted++;
            counters_.bump("beacon.evicted");
        }
    }
    return report;
}

std::vector<Guid>
PlaxtonMesh::objectsPublishedBy(NodeId storer) const
{
    auto it = published_.find(storer);
    if (it == published_.end())
        return {};
    return std::vector<Guid>(it->second.begin(), it->second.end());
}

} // namespace oceanstore
