/**
 * @file
 * Minimal leveled logging for simulation components.
 *
 * Follows the gem5 convention of distinguishing user-caused fatal
 * conditions from internal invariant violations (panic).
 */

#ifndef OCEANSTORE_UTIL_LOGGING_H
#define OCEANSTORE_UTIL_LOGGING_H

#include <sstream>
#include <string>

namespace oceanstore {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Global log configuration (process-wide; simulations are single-threaded). */
class Log
{
  public:
    /** Set the minimum level that will be emitted. */
    static void setLevel(LogLevel lvl);

    /** Current minimum level. */
    static LogLevel level();

    /** Emit a message at @p lvl (no-op when below the minimum level). */
    static void write(LogLevel lvl, const std::string &msg);

    /** True when a message at @p lvl would be emitted. */
    static bool enabled(LogLevel lvl) { return lvl >= level(); }
};

/**
 * Abort the process for an internal invariant violation (a bug in the
 * library itself, never a user error).
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Terminate for an unrecoverable user/configuration error.
 * Throws std::runtime_error so tests can assert on misconfiguration.
 */
[[noreturn]] void fatal(const std::string &msg);

namespace log_detail {

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace log_detail

/** Emit a debug-level message built from stream-able arguments. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    if (Log::enabled(LogLevel::Debug))
        Log::write(LogLevel::Debug,
                   log_detail::format(std::forward<Args>(args)...));
}

/** Emit an info-level message. */
template <typename... Args>
void
logInfo(Args &&...args)
{
    if (Log::enabled(LogLevel::Info))
        Log::write(LogLevel::Info,
                   log_detail::format(std::forward<Args>(args)...));
}

/** Emit a warning. */
template <typename... Args>
void
logWarn(Args &&...args)
{
    if (Log::enabled(LogLevel::Warn))
        Log::write(LogLevel::Warn,
                   log_detail::format(std::forward<Args>(args)...));
}

/** Emit an error-level message. */
template <typename... Args>
void
logError(Args &&...args)
{
    if (Log::enabled(LogLevel::Error))
        Log::write(LogLevel::Error,
                   log_detail::format(std::forward<Args>(args)...));
}

} // namespace oceanstore

#endif // OCEANSTORE_UTIL_LOGGING_H
