/**
 * @file
 * Runtime contract checks.
 *
 * OS_CHECK verifies an invariant in every build configuration and
 * aborts with a diagnostic when it fails; OS_DCHECK is identical in
 * debug/sanitizer builds and compiles to nothing under NDEBUG, so it
 * may guard hot paths.  Both replace bare assert(): a failure always
 * prints the expression, location, and an optional streamed message
 * before aborting, which is what we want from a simulator whose
 * results are only meaningful if its invariants hold.
 *
 * Usage:
 *   OS_CHECK(k <= n);
 *   OS_CHECK(when >= now_, "event at t=", when, " scheduled in past");
 *   OS_DCHECK(idx < table_.size());
 */

#ifndef OCEANSTORE_UTIL_CHECK_H
#define OCEANSTORE_UTIL_CHECK_H

#include <sstream>
#include <string>

namespace oceanstore {
namespace check_detail {

/** Print the diagnostic and abort.  Never returns. */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *macro, const char *expr,
                              const std::string &msg);

/** Stream any number of arguments into one message string. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace check_detail
} // namespace oceanstore

/**
 * Verify @p cond in all build types; abort with a diagnostic (plus any
 * extra stream-able arguments) when it is false.
 */
#define OS_CHECK(cond, ...)                                              \
    do {                                                                 \
        if (!(cond))                                                     \
            ::oceanstore::check_detail::checkFailed(                     \
                __FILE__, __LINE__, "OS_CHECK", #cond,                   \
                ::oceanstore::check_detail::formatMsg(__VA_ARGS__));     \
    } while (0)

/**
 * Debug-only contract check: same as OS_CHECK when NDEBUG is not
 * defined, compiled out (operands unevaluated) in release builds.
 */
#ifdef NDEBUG
#define OS_DCHECK(cond, ...)                                             \
    do {                                                                 \
        (void)sizeof(!(cond));                                           \
    } while (0)
#else
#define OS_DCHECK(cond, ...)                                             \
    do {                                                                 \
        if (!(cond))                                                     \
            ::oceanstore::check_detail::checkFailed(                     \
                __FILE__, __LINE__, "OS_DCHECK", #cond,                  \
                ::oceanstore::check_detail::formatMsg(__VA_ARGS__));     \
    } while (0)
#endif

#endif // OCEANSTORE_UTIL_CHECK_H
