/**
 * @file
 * Runtime contract checks.
 *
 * OS_CHECK verifies an invariant in every build configuration and
 * aborts with a diagnostic when it fails; OS_DCHECK is identical in
 * debug/sanitizer builds and compiles to nothing under NDEBUG, so it
 * may guard hot paths.  Both replace bare assert(): a failure always
 * prints the expression, location, and an optional streamed message
 * before aborting, which is what we want from a simulator whose
 * results are only meaningful if its invariants hold.
 *
 * Usage:
 *   OS_CHECK(k <= n);
 *   OS_CHECK(when >= now_, "event at t=", when, " scheduled in past");
 *   OS_DCHECK(idx < table_.size());
 */

#ifndef OCEANSTORE_UTIL_CHECK_H
#define OCEANSTORE_UTIL_CHECK_H

#include <sstream>
#include <string>

namespace oceanstore {

/**
 * Last-gasp diagnostics hook: called (at most once, with the
 * registered argument) after a failed check prints its diagnostic
 * and before the process aborts.  The flight recorder uses this to
 * dump recent spans + a metrics snapshot from a crashing threaded
 * deployment.  The hook is consumed on first failure — a check
 * failing *inside* the hook falls straight through to abort, so the
 * hook may safely call checked code.
 */
using CheckFailureHook = void (*)(void *arg);

/** Install @p hook (nullptr to clear); returns nothing.  The
 *  previous hook/arg pair can be read back via
 *  checkFailureHook()/checkFailureHookArg() for RAII restore. */
void setCheckFailureHook(CheckFailureHook hook, void *arg);

/** The currently installed hook / argument (for save-restore). */
CheckFailureHook checkFailureHook();
void *checkFailureHookArg();

namespace check_detail {

/** Print the diagnostic, run the failure hook (once), and abort.
 *  Never returns. */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *macro, const char *expr,
                              const std::string &msg);

/** Stream any number of arguments into one message string. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace check_detail
} // namespace oceanstore

/**
 * Verify @p cond in all build types; abort with a diagnostic (plus any
 * extra stream-able arguments) when it is false.
 */
#define OS_CHECK(cond, ...)                                              \
    do {                                                                 \
        if (!(cond))                                                     \
            ::oceanstore::check_detail::checkFailed(                     \
                __FILE__, __LINE__, "OS_CHECK", #cond,                   \
                ::oceanstore::check_detail::formatMsg(__VA_ARGS__));     \
    } while (0)

/**
 * Debug-only contract check: same as OS_CHECK when NDEBUG is not
 * defined, compiled out (operands unevaluated) in release builds.
 */
#ifdef NDEBUG
#define OS_DCHECK(cond, ...)                                             \
    do {                                                                 \
        (void)sizeof(!(cond));                                           \
    } while (0)
#else
#define OS_DCHECK(cond, ...)                                             \
    do {                                                                 \
        if (!(cond))                                                     \
            ::oceanstore::check_detail::checkFailed(                     \
                __FILE__, __LINE__, "OS_DCHECK", #cond,                  \
                ::oceanstore::check_detail::formatMsg(__VA_ARGS__));     \
    } while (0)
#endif

#endif // OCEANSTORE_UTIL_CHECK_H
