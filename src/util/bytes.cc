#include "util/bytes.h"

namespace oceanstore {

Bytes
toBytes(std::string_view s)
{
    return Bytes(s.begin(), s.end());
}

std::string
toString(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

std::string
hexEncode(const Bytes &b)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(b.size() * 2);
    for (std::uint8_t c : b) {
        out.push_back(digits[c >> 4]);
        out.push_back(digits[c & 0xf]);
    }
    return out;
}

namespace {

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    throw std::invalid_argument("hexDecode: non-hex character");
}

} // namespace

Bytes
hexDecode(std::string_view hex)
{
    if (hex.size() % 2 != 0)
        throw std::invalid_argument("hexDecode: odd-length input");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]);
        int lo = hexNibble(hex[i + 1]);
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

Bytes
operator+(const Bytes &a, const Bytes &b)
{
    Bytes out;
    out.reserve(a.size() + b.size());
    out.insert(out.end(), a.begin(), a.end());
    out.insert(out.end(), b.begin(), b.end());
    return out;
}

void
ByteWriter::putU16(std::uint16_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void
ByteWriter::putU32(std::uint32_t v)
{
    for (int shift = 24; shift >= 0; shift -= 8)
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::putU64(std::uint64_t v)
{
    for (int shift = 56; shift >= 0; shift -= 8)
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
ByteWriter::putRaw(const Bytes &b)
{
    buf_.insert(buf_.end(), b.begin(), b.end());
}

void
ByteWriter::putRaw(const std::uint8_t *p, std::size_t n)
{
    buf_.insert(buf_.end(), p, p + n);
}

void
ByteWriter::putBlob(const Bytes &b)
{
    putU32(static_cast<std::uint32_t>(b.size()));
    putRaw(b);
}

void
ByteWriter::putString(std::string_view s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
ByteReader::require(std::size_t n) const
{
    if (remaining() < n)
        throw std::out_of_range("ByteReader: buffer exhausted");
}

std::uint8_t
ByteReader::getU8()
{
    require(1);
    return buf_[pos_++];
}

std::uint16_t
ByteReader::getU16()
{
    require(2);
    std::uint16_t v = (static_cast<std::uint16_t>(buf_[pos_]) << 8) |
                      buf_[pos_ + 1];
    pos_ += 2;
    return v;
}

std::uint32_t
ByteReader::getU32()
{
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v = (v << 8) | buf_[pos_ + i];
    pos_ += 4;
    return v;
}

std::uint64_t
ByteReader::getU64()
{
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v = (v << 8) | buf_[pos_ + i];
    pos_ += 8;
    return v;
}

Bytes
ByteReader::getRaw(std::size_t n)
{
    require(n);
    Bytes out(buf_.begin() + pos_, buf_.begin() + pos_ + n);
    pos_ += n;
    return out;
}

Bytes
ByteReader::getBlob()
{
    std::uint32_t n = getU32();
    return getRaw(n);
}

std::string
ByteReader::getString()
{
    Bytes b = getBlob();
    return toString(b);
}

} // namespace oceanstore
