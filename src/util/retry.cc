#include "util/retry.h"

#include <algorithm>

#include "util/check.h"

namespace oceanstore {

RetrySchedule::RetrySchedule(const RetryPolicy &policy, std::uint64_t seed)
    : policy_(policy), rng_(seed)
{
    OS_CHECK(policy.firstDelay > 0, "RetryPolicy: firstDelay ",
             policy.firstDelay, " must be positive");
    OS_CHECK(policy.backoff >= 1.0, "RetryPolicy: backoff ",
             policy.backoff, " must be >= 1");
    OS_CHECK(policy.maxAttempts >= 1,
             "RetryPolicy: maxAttempts must be >= 1");
    OS_CHECK(policy.jitter >= 0.0 && policy.jitter < 1.0,
             "RetryPolicy: jitter ", policy.jitter,
             " outside [0, 1)");
}

std::optional<double>
RetrySchedule::nextDelay()
{
    if (issued_ > policy_.maxAttempts)
        return std::nullopt;

    // Delay index i (1-based) backs off geometrically from firstDelay,
    // clamped at maxDelay.  The final issued delay (index maxAttempts)
    // is the grace wait after the last attempt.
    double base = policy_.firstDelay;
    for (unsigned i = 1; i < issued_; i++) {
        base *= policy_.backoff;
        if (base >= policy_.maxDelay)
            break;
    }
    base = std::min(base, policy_.maxDelay);
    if (policy_.jitter > 0)
        base *= 1.0 + rng_.uniform(-policy_.jitter, policy_.jitter);

    if (issued_ < policy_.maxAttempts)
        attempts_++;
    issued_++;
    return base;
}

} // namespace oceanstore
