#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/check.h"

namespace oceanstore {

void
Accumulator::add(double x)
{
    count_++;
    sum_ += x;
    if (count_ == 1) {
        min_ = max_ = x;
        mean_ = x;
        m2_ = 0.0;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
    }
    if (keepSamples_) {
        samples_.push_back(x);
        sorted_ = false;
    }
}

double
Accumulator::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::percentile(double p) const
{
    OS_CHECK(keepSamples_,
             "Accumulator::percentile requires keep_samples=true");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (p <= 0.0)
        return samples_.front();
    if (p >= 100.0)
        return samples_.back();
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void
Accumulator::clear()
{
    count_ = 0;
    sum_ = mean_ = m2_ = min_ = max_ = 0.0;
    samples_.clear();
    sorted_ = true;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    if (!(lo < hi) || bins == 0)
        throw std::invalid_argument("Histogram: bad range or bin count");
}

void
Histogram::add(double x)
{
    double clamped = std::min(std::max(x, lo_),
                              std::nexttoward(hi_, lo_));
    double frac = (clamped - lo_) / (hi_ - lo_);
    std::size_t i = static_cast<std::size_t>(
        frac * static_cast<double>(bins_.size()));
    if (i >= bins_.size())
        i = bins_.size() - 1;
    bins_[i]++;
    total_++;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(bins_.size());
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < bins_.size(); i++) {
        if (i)
            os << " ";
        os << bins_[i];
    }
    os << "]";
    return os.str();
}

void
Counters::bump(const std::string &name, std::uint64_t delta)
{
    c_[name] += delta;
}

std::uint64_t
Counters::get(const std::string &name) const
{
    auto it = c_.find(name);
    return it == c_.end() ? 0 : it->second;
}

} // namespace oceanstore
