/**
 * @file
 * Annotated mutex for the Runtime seam (thread-safety prep).
 *
 * The deterministic simulator is single-threaded by contract, so
 * today every lock would be uncontended pure overhead on hot paths
 * (Simulator::schedule, MetricsRegistry::inc fire millions of times
 * per bench run).  The Runtime seam (ROADMAP item 2) will run the
 * same types from real threads.
 *
 * This header squares that circle: util::Mutex carries the clang
 * thread-safety *annotations* unconditionally — so the lock
 * discipline is statically checked in every build — but its
 * lock()/unlock() bodies compile to nothing unless OCEANSTORE_THREADED
 * is defined, which the future real-process runtime will do.  The
 * sim build therefore pays zero cycles while the seam inherits a
 * tree whose guarded members and lock scopes are already proven
 * consistent by `scripts/check.sh tsafety` (clang, -Wthread-safety
 * -Werror).
 */

#ifndef OCEANSTORE_UTIL_MUTEX_H
#define OCEANSTORE_UTIL_MUTEX_H

#ifdef OCEANSTORE_THREADED
#include <mutex>
#endif

#include "util/thread_annotations.h"

namespace oceanstore {

/**
 * A mutual-exclusion capability.  No-op in the single-threaded sim
 * build; std::mutex-backed when OCEANSTORE_THREADED is defined.
 */
class OS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

#ifdef OCEANSTORE_THREADED
    void lock() OS_ACQUIRE() { m_.lock(); }
    void unlock() OS_RELEASE() { m_.unlock(); }
#else
    void lock() OS_ACQUIRE() {}
    void unlock() OS_RELEASE() {}
#endif

  private:
#ifdef OCEANSTORE_THREADED
    std::mutex m_;
#endif
};

/** RAII lock over a util::Mutex. */
class OS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) OS_ACQUIRE(mu)
        : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() OS_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

} // namespace oceanstore

#endif // OCEANSTORE_UTIL_MUTEX_H
