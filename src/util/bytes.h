/**
 * @file
 * Byte-buffer utilities used throughout OceanStore.
 *
 * All wire formats in the library are built on top of the Bytes type:
 * a plain contiguous buffer of octets.  This header provides hex
 * conversion and a small serialization reader/writer pair used by the
 * protocol messages, update records and archival fragments.
 */

#ifndef OCEANSTORE_UTIL_BYTES_H
#define OCEANSTORE_UTIL_BYTES_H

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace oceanstore {

/** A contiguous, owned buffer of octets. */
using Bytes = std::vector<std::uint8_t>;

/** Convert a string (its raw characters) to Bytes. */
Bytes toBytes(std::string_view s);

/** Convert Bytes back into a std::string (raw characters). */
std::string toString(const Bytes &b);

/** Lower-case hexadecimal encoding of a byte buffer. */
std::string hexEncode(const Bytes &b);

/**
 * Decode a lower- or upper-case hexadecimal string.
 *
 * @throws std::invalid_argument on odd length or non-hex characters.
 */
Bytes hexDecode(std::string_view hex);

/** Concatenate two byte buffers. */
Bytes operator+(const Bytes &a, const Bytes &b);

/**
 * Little sequential writer for fixed-width integers and length-prefixed
 * blobs.  Used by every wire format in the library so that byte
 * accounting (Figure 6 of the paper) reflects realistic message sizes.
 */
class ByteWriter
{
  public:
    ByteWriter() = default;

    /** Append a single octet. */
    void putU8(std::uint8_t v) { buf_.push_back(v); }

    /** Append a 16-bit unsigned integer, big-endian. */
    void putU16(std::uint16_t v);

    /** Append a 32-bit unsigned integer, big-endian. */
    void putU32(std::uint32_t v);

    /** Append a 64-bit unsigned integer, big-endian. */
    void putU64(std::uint64_t v);

    /** Append raw bytes with no length prefix. */
    void putRaw(const Bytes &b);

    /** Append raw bytes from a pointer with no length prefix. */
    void putRaw(const std::uint8_t *p, std::size_t n);

    /** Append a 32-bit length prefix followed by the blob itself. */
    void putBlob(const Bytes &b);

    /** Append a 32-bit length prefix followed by the string bytes. */
    void putString(std::string_view s);

    /** Number of bytes written so far. */
    std::size_t size() const { return buf_.size(); }

    /** Move the accumulated buffer out of the writer. */
    Bytes take() { return std::move(buf_); }

    /** Read-only view of the accumulated buffer. */
    const Bytes &buffer() const { return buf_; }

  private:
    Bytes buf_;
};

/**
 * Sequential reader matching ByteWriter.
 *
 * All accessors throw std::out_of_range when the buffer is exhausted,
 * which protocol code treats as a malformed message.
 */
class ByteReader
{
  public:
    explicit ByteReader(const Bytes &b) : buf_(b), pos_(0) {}

    /** Read a single octet. */
    std::uint8_t getU8();

    /** Read a big-endian 16-bit unsigned integer. */
    std::uint16_t getU16();

    /** Read a big-endian 32-bit unsigned integer. */
    std::uint32_t getU32();

    /** Read a big-endian 64-bit unsigned integer. */
    std::uint64_t getU64();

    /** Read exactly @p n raw bytes. */
    Bytes getRaw(std::size_t n);

    /** Read a 32-bit length prefix followed by that many bytes. */
    Bytes getBlob();

    /** Read a length-prefixed string. */
    std::string getString();

    /** Bytes remaining in the buffer. */
    std::size_t remaining() const { return buf_.size() - pos_; }

    /** True when every byte has been consumed. */
    bool exhausted() const { return pos_ == buf_.size(); }

  private:
    void require(std::size_t n) const;

    const Bytes &buf_;
    std::size_t pos_;
};

} // namespace oceanstore

#endif // OCEANSTORE_UTIL_BYTES_H
