#include "util/random.h"

#include <cmath>
#include <stdexcept>

namespace oceanstore {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    OS_CHECK(bound > 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (~bound + 1) % bound; // (2^64 - bound) % bound
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::between(std::int64_t lo, std::int64_t hi)
{
    OS_CHECK(lo <= hi, "Rng::between: lo=", lo, " > hi=", hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    // Irwin-Hall sum of 12 uniforms: variance 1, mean 6.
    double sum = 0.0;
    for (int i = 0; i < 12; i++)
        sum += uniform();
    return mean + stddev * (sum - 6.0);
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        throw std::invalid_argument("geometric: p out of (0,1]");
    if (p == 1.0)
        return 0;
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    OS_CHECK(k <= n, "Rng::sampleIndices: k=", k, " > n=", n);
    // Partial Fisher-Yates over an index vector; O(n) setup, fine for
    // the node counts used in simulation.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; i++)
        idx[i] = i;
    for (std::size_t i = 0; i < k; i++) {
        std::size_t j = i + below(n - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace oceanstore
