/**
 * @file
 * Unified retry/timeout policy (robustness substrate).
 *
 * The paper assumes "servers and devices will connect, disconnect,
 * and fail sporadically" (Section 4.7); every protocol that sends a
 * request over such a substrate needs the same three ingredients:
 * a timeout, exponential backoff, and a bound on attempts.  This
 * header provides the one policy type shared by PBFT client
 * submission, archival fragment requests, location queries and the
 * dissemination-tree push, plus the deterministic backoff sequence
 * derived from it.
 *
 * Jitter is drawn from a seeded Rng, never wall-clock entropy, so a
 * retried scenario replays bit-for-bit under the determinism
 * contract (DESIGN.md section 8).
 */

#ifndef OCEANSTORE_UTIL_RETRY_H
#define OCEANSTORE_UTIL_RETRY_H

#include <cstdint>
#include <optional>

#include "util/random.h"

namespace oceanstore {

/** Timeout + exponential-backoff + bounded-attempt parameters. */
struct RetryPolicy
{
    /** Seconds between the first attempt and the first retry. */
    double firstDelay = 1.0;
    /** Multiplier applied to the delay after every retry. */
    double backoff = 2.0;
    /** Ceiling on the per-retry delay, seconds. */
    double maxDelay = 30.0;
    /** Total attempts, counting the initial one.  Never unbounded:
     *  a simulation must drain its event queue. */
    unsigned maxAttempts = 5;
    /** Fractional +/- jitter applied to every delay (deterministic,
     *  from the schedule's seed). */
    double jitter = 0.0;
};

/**
 * The concrete delay sequence a policy generates for one call.
 *
 * nextDelay() yields exactly @c maxAttempts values: the first
 * maxAttempts-1 are the gaps before attempts 2..maxAttempts, and the
 * final value is the grace period after the last attempt before the
 * caller should declare the call exhausted.  Two schedules built from
 * the same (policy, seed) produce identical sequences.
 */
class RetrySchedule
{
  public:
    RetrySchedule(const RetryPolicy &policy, std::uint64_t seed);

    /** Next delay in seconds, or nullopt once the policy's attempt
     *  budget (plus the final grace wait) is consumed. */
    std::optional<double> nextDelay();

    /** Attempts the consumed delays account for (1 after
     *  construction: the caller launched the initial attempt). */
    unsigned attemptsStarted() const { return attempts_; }

    /** True once every delay has been handed out. */
    bool exhausted() const { return issued_ > policy_.maxAttempts; }

    /** The generating policy. */
    const RetryPolicy &policy() const { return policy_; }

  private:
    RetryPolicy policy_;
    Rng rng_;
    unsigned attempts_ = 1; //!< Initial attempt is the caller's.
    unsigned issued_ = 1;   //!< Next delay index to hand out.
};

} // namespace oceanstore

#endif // OCEANSTORE_UTIL_RETRY_H
