/**
 * @file
 * Statistics accumulators used by benchmarks and introspection.
 */

#ifndef OCEANSTORE_UTIL_STATS_H
#define OCEANSTORE_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace oceanstore {

/**
 * Online accumulator of scalar samples.
 *
 * Tracks count, sum, min, max and (via Welford's algorithm) variance.
 * Optionally retains samples so that percentiles can be queried; the
 * benchmark harnesses rely on this for stretch CDFs.
 */
class Accumulator
{
  public:
    /** @param keep_samples retain raw samples for percentile queries. */
    explicit Accumulator(bool keep_samples = true)
        : keepSamples_(keep_samples) {}

    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population variance (0 when fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Minimum sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Maximum sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * p-th percentile, p in [0, 100].  Contract: the accumulator must
     * have been constructed with keep_samples=true (OS_CHECK aborts
     * otherwise — a percentile over discarded samples would silently
     * misreport).  Uses nearest-rank on the sorted samples.
     */
    double percentile(double p) const;

    /** Reset to empty. */
    void clear();

  private:
    bool keepSamples_;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Fixed-width histogram over [lo, hi) with out-of-range clamping,
 * used by introspective observation modules.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample (clamped into range). */
    void add(double x);

    /** Count in bin @p i. */
    std::uint64_t bin(std::size_t i) const { return bins_.at(i); }

    /** Number of bins. */
    std::size_t numBins() const { return bins_.size(); }

    /** Total samples added. */
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Render a compact one-line summary (for logs). */
    std::string summary() const;

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/**
 * Named counter set: a tiny metrics registry that protocol components
 * use to report message/byte counts, which the Figure 6 benchmark
 * reads back.
 */
class Counters
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void bump(const std::string &name, std::uint64_t delta = 1);

    /** Current value (0 if never bumped). */
    std::uint64_t get(const std::string &name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const { return c_; }

    /** Reset every counter to zero. */
    void clear() { c_.clear(); }

  private:
    std::map<std::string, std::uint64_t> c_;
};

} // namespace oceanstore

#endif // OCEANSTORE_UTIL_STATS_H
