#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace oceanstore {
namespace check_detail {

void
checkFailed(const char *file, int line, const char *macro,
            const char *expr, const std::string &msg)
{
    if (msg.empty()) {
        std::fprintf(stderr, "%s failed at %s:%d: %s\n", macro, file,
                     line, expr);
    } else {
        std::fprintf(stderr, "%s failed at %s:%d: %s (%s)\n", macro,
                     file, line, expr, msg.c_str());
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace check_detail
} // namespace oceanstore
