#include "util/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace oceanstore {

namespace {

std::atomic<CheckFailureHook> gHook{nullptr};
std::atomic<void *> gHookArg{nullptr};

} // namespace

void
setCheckFailureHook(CheckFailureHook hook, void *arg)
{
    // Arg first: a concurrent failure that wins the hook exchange
    // must never pair the new hook with the old arg.
    gHookArg.store(arg, std::memory_order_release);
    gHook.store(hook, std::memory_order_release);
}

CheckFailureHook
checkFailureHook()
{
    return gHook.load(std::memory_order_acquire);
}

void *
checkFailureHookArg()
{
    return gHookArg.load(std::memory_order_acquire);
}

namespace check_detail {

void
checkFailed(const char *file, int line, const char *macro,
            const char *expr, const std::string &msg)
{
    if (msg.empty()) {
        std::fprintf(stderr, "%s failed at %s:%d: %s\n", macro, file,
                     line, expr);
    } else {
        std::fprintf(stderr, "%s failed at %s:%d: %s (%s)\n", macro,
                     file, line, expr, msg.c_str());
    }
    std::fflush(stderr);
    // Consume the hook before running it: a second failure (another
    // thread, or checked code inside the hook itself) sees nullptr
    // and aborts directly instead of recursing.
    if (CheckFailureHook hook =
            gHook.exchange(nullptr, std::memory_order_acq_rel)) {
        hook(gHookArg.load(std::memory_order_acquire));
        std::fflush(stderr);
    }
    std::abort();
}

} // namespace check_detail
} // namespace oceanstore
