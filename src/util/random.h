/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (topology generation,
 * failure injection, workload generators, salted hashing experiments)
 * draws from an explicitly seeded Rng so that simulations are exactly
 * reproducible run-to-run.  The core generator is xoshiro256**, seeded
 * through SplitMix64.
 */

#ifndef OCEANSTORE_UTIL_RANDOM_H
#define OCEANSTORE_UTIL_RANDOM_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace oceanstore {

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used
 * with standard library distributions when needed, though the helper
 * methods below cover the library's needs.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x0cea9507eu);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Approximately normal value (sum of uniforms) with mean/stddev. */
    double normal(double mean, double stddev);

    /** Geometric: number of failures before first success, P(succ)=p. */
    std::uint64_t geometric(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; i--) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        OS_CHECK(!v.empty(), "Rng::pick on empty vector");
        return v[below(v.size())];
    }

    /**
     * Sample @p k distinct indices from [0, n) without replacement.
     * Returned in random order.
     */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Derive an independent child generator (for parallel components). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace oceanstore

#endif // OCEANSTORE_UTIL_RANDOM_H
