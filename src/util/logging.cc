#include "util/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace oceanstore {

namespace {

LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
      default:              return "?";
    }
}

} // namespace

void
Log::setLevel(LogLevel lvl)
{
    g_level = lvl;
}

LogLevel
Log::level()
{
    return g_level;
}

void
Log::write(LogLevel lvl, const std::string &msg)
{
    if (lvl < g_level)
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(lvl), msg.c_str());
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    throw std::runtime_error("fatal: " + msg);
}

} // namespace oceanstore
