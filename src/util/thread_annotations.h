/**
 * @file
 * Clang thread-safety annotation macros (Runtime-seam prep).
 *
 * ROADMAP item 2 extracts a `Runtime` seam whose real-process backend
 * runs protocol state machines on actual threads.  The handful of
 * process-wide types that backend will share — the metrics registry,
 * the trace buffer, the simulator/network pooled stores — are
 * annotated *now*, while the code is still single-threaded, so the
 * lock discipline is machine-checked from day one instead of being
 * retrofitted after the first data race.
 *
 * Under clang the macros expand to the `-Wthread-safety` attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); everywhere
 * else they vanish.  The analysis is purely static: it checks that
 * every access to an OS_GUARDED_BY member happens while the named
 * capability is held, even when the capability itself (util::Mutex)
 * compiles to a no-op in the single-threaded sim build.
 *
 * scripts/check.sh's `tsafety` configuration builds the tree with
 * clang and `-Wthread-safety -Werror`; the CI `analysis` job runs it.
 */

#ifndef OCEANSTORE_UTIL_THREAD_ANNOTATIONS_H
#define OCEANSTORE_UTIL_THREAD_ANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define OS_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define OS_THREAD_ANNOTATION__(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability (a mutex-like thing). */
#define OS_CAPABILITY(x) OS_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII type that acquires on construction, releases on
 *  destruction (e.g. util::MutexLock). */
#define OS_SCOPED_CAPABILITY OS_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only while @p x is held. */
#define OS_GUARDED_BY(x) OS_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define OS_PT_GUARDED_BY(x) OS_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define OS_REQUIRES(...) \
    OS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function that must be called with the capability *not* held. */
#define OS_EXCLUDES(...) \
    OS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability and holds it on return. */
#define OS_ACQUIRE(...) \
    OS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define OS_RELEASE(...) \
    OS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Try-lock: acquires the capability when returning @p ret. */
#define OS_TRY_ACQUIRE(ret, ...) \
    OS_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/** Function returning a reference to the named capability. */
#define OS_RETURN_CAPABILITY(x) \
    OS_THREAD_ANNOTATION__(lock_returned(x))

/** Escape hatch: suppress the analysis for one function.  Use only
 *  with a comment explaining why the access pattern is safe. */
#define OS_NO_THREAD_SAFETY_ANALYSIS \
    OS_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // OCEANSTORE_UTIL_THREAD_ANNOTATIONS_H
