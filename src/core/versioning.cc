#include "core/versioning.h"

#include <algorithm>

namespace oceanstore {

std::string
VersionedName::toString() const
{
    if (!version.has_value())
        return guid.hex();
    return guid.hex() + "@" + std::to_string(*version);
}

std::optional<VersionedName>
VersionedName::parse(const std::string &name)
{
    auto at = name.find('@');
    std::string hex = name.substr(0, at == std::string::npos
                                         ? name.size()
                                         : at);
    VersionedName vn;
    try {
        vn.guid = Guid::fromHex(hex);
    } catch (const std::exception &) {
        return std::nullopt;
    }
    if (at != std::string::npos) {
        std::string ver = name.substr(at + 1);
        if (ver.empty() ||
            ver.find_first_not_of("0123456789") != std::string::npos) {
            return std::nullopt;
        }
        try {
            vn.version = std::stoull(ver);
        } catch (const std::exception &) {
            return std::nullopt;
        }
    }
    return vn;
}

std::vector<VersionRecord>
modificationHistory(const DataObject &obj)
{
    std::vector<VersionRecord> history;
    history.reserve(obj.log().size());
    for (const LogEntry &e : obj.log()) {
        VersionRecord rec;
        rec.version = e.versionAfter;
        rec.timestamp = e.update.timestamp;
        rec.writerPublicKey = e.update.writerPublicKey;
        rec.committed = e.committed;
        for (const auto &clause : e.update.clauses)
            rec.actions += clause.actions.size();
        history.push_back(std::move(rec));
    }
    return history;
}

std::set<VersionNum>
selectRetainedVersions(const std::vector<VersionNum> &versions,
                       const RetentionPolicy &policy)
{
    std::set<VersionNum> keep;
    if (versions.empty())
        return keep;

    std::vector<VersionNum> sorted = versions;
    std::sort(sorted.begin(), sorted.end());
    VersionNum latest = sorted.back();
    keep.insert(latest); // the active form is never retired

    switch (policy.kind) {
      case RetentionKind::KeepAll:
        keep.insert(sorted.begin(), sorted.end());
        break;

      case RetentionKind::KeepLast: {
        std::size_t n = std::min<std::size_t>(policy.keepLast,
                                              sorted.size());
        for (std::size_t i = sorted.size() - n; i < sorted.size(); i++)
            keep.insert(sorted[i]);
        break;
      }

      case RetentionKind::KeepLandmarks: {
        // Dense recent window ...
        std::size_t window = std::min<std::size_t>(
            policy.landmarkWindow, sorted.size());
        for (std::size_t i = sorted.size() - window; i < sorted.size();
             i++) {
            keep.insert(sorted[i]);
        }
        // ... plus every stride-th older version as a landmark,
        // counting from the oldest so landmarks are stable as new
        // versions arrive.
        unsigned stride = std::max(1u, policy.landmarkStride);
        for (std::size_t i = 0; i + window < sorted.size();
             i += stride) {
            keep.insert(sorted[i]);
        }
        break;
      }
    }
    return keep;
}

} // namespace oceanstore
