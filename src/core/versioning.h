/**
 * @file
 * Versioning interfaces (Section 2 footnote 2, Section 4.5).
 *
 * "In principle, every update to an OceanStore object creates a new
 * version ... we plan to provide interfaces for retiring old
 * versions, as in the Elephant File System."  And from Section 4.5:
 * "we provide a naming syntax which explicitly incorporates version
 * numbers.  Such names can be included in other documents as a form
 * of permanent hyper-link.  In addition, interfaces will exist to
 * examine modification history and to set versioning policies."
 *
 * This module provides all three: version-qualified names
 * ("<guid-hex>@<version>"), modification-history examination over a
 * replica's update log, and Elephant-style retention policies that
 * decide which archival versions to keep.
 */

#ifndef OCEANSTORE_CORE_VERSIONING_H
#define OCEANSTORE_CORE_VERSIONING_H

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "consistency/data_object.h"

namespace oceanstore {

/**
 * A version-qualified object name: a permanent hyper-link.  Without a
 * version it denotes the active (latest) form; with one, an immutable
 * archival version.
 */
struct VersionedName
{
    Guid guid;
    std::optional<VersionNum> version;

    /** Render as "<40-hex>@<version>" or bare "<40-hex>". */
    std::string toString() const;

    /** Parse; @return nullopt on malformed input. */
    static std::optional<VersionedName> parse(const std::string &name);

    bool operator==(const VersionedName &) const = default;
};

/** One entry of an object's modification history. */
struct VersionRecord
{
    VersionNum version = 0;     //!< Version this update produced.
    Timestamp timestamp;        //!< Client-assigned (who/when).
    Bytes writerPublicKey;      //!< Key that signed the update.
    bool committed = false;     //!< Aborted updates are logged too.
    std::size_t actions = 0;    //!< How many actions it carried.
};

/**
 * Examine modification history from a replica's update log:
 * committed entries carry the version they created; aborted ones the
 * version they failed against.
 */
std::vector<VersionRecord> modificationHistory(const DataObject &obj);

/** Elephant-style retention policies (Section 2, citing [44]). */
enum class RetentionKind
{
    KeepAll,       //!< Every version is archival (the default vision).
    KeepLast,      //!< Only the most recent K versions.
    KeepLandmarks, //!< Recent versions densely, older ones sparsely.
};

/** A configured retention policy. */
struct RetentionPolicy
{
    RetentionKind kind = RetentionKind::KeepAll;
    /** KeepLast: how many recent versions survive. */
    unsigned keepLast = 8;
    /** KeepLandmarks: keep every version newer than this ... */
    unsigned landmarkWindow = 4;
    /** ... and every stride-th older version as a landmark. */
    unsigned landmarkStride = 4;
};

/**
 * Apply a policy to the set of existing archived versions.
 * @return the versions to *retain*; the caller retires the rest.
 * The latest version is always retained.
 */
std::set<VersionNum>
selectRetainedVersions(const std::vector<VersionNum> &versions,
                       const RetentionPolicy &policy);

} // namespace oceanstore

#endif // OCEANSTORE_CORE_VERSIONING_H
