#include "core/object_handle.h"

#include <stdexcept>

namespace oceanstore {

namespace {

Bytes
deriveKey(const KeyPair &owner, const std::string &name,
          const char *label)
{
    Sha1 h;
    h.update(owner.privateKey);
    h.update(std::string_view(label));
    h.update(name);
    return digestToBytes(h.finish());
}

} // namespace

ObjectHandle::ObjectHandle(const KeyPair &owner, const std::string &name,
                           std::size_t block_size)
    : owner_(owner), name_(name),
      guid_(Guid::forObject(owner.publicKey, name)),
      blockSize_(block_size),
      readCipher_(deriveKey(owner, name, "read")),
      searchCipher_(deriveKey(owner, name, "search"))
{
    if (block_size == 0)
        throw std::invalid_argument("ObjectHandle: zero block size");
}

std::vector<Bytes>
ObjectHandle::splitBlocks(const Bytes &plaintext) const
{
    std::vector<Bytes> blocks;
    for (std::size_t off = 0; off < plaintext.size();
         off += blockSize_) {
        std::size_t len = std::min(blockSize_, plaintext.size() - off);
        blocks.emplace_back(plaintext.begin() + off,
                            plaintext.begin() + off + len);
    }
    if (blocks.empty())
        blocks.emplace_back(); // empty object still has one block
    return blocks;
}

Bytes
ObjectHandle::encryptBlock(std::uint64_t position,
                           const Bytes &plain) const
{
    Bytes out;
    out.reserve(8 + plain.size());
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(position >> (56 - 8 * i)));
    Bytes body = readCipher_.encrypt(position, plain);
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

Bytes
ObjectHandle::decryptBlock(const Bytes &cipher) const
{
    if (cipher.size() < 8)
        throw std::invalid_argument("decryptBlock: truncated block");
    std::uint64_t position = 0;
    for (int i = 0; i < 8; i++)
        position = (position << 8) | cipher[i];
    Bytes body(cipher.begin() + 8, cipher.end());
    return readCipher_.decrypt(position, body);
}

Bytes
ObjectHandle::decryptContent(
    const std::vector<Bytes> &logical_blocks) const
{
    Bytes out;
    for (const auto &block : logical_blocks) {
        Bytes plain = decryptBlock(block);
        out.insert(out.end(), plain.begin(), plain.end());
    }
    return out;
}

SearchIndex
ObjectHandle::buildSearchIndex(std::string_view document) const
{
    return searchCipher_.buildIndex(document);
}

SearchTrapdoor
ObjectHandle::searchTrapdoor(std::string_view word) const
{
    return searchCipher_.trapdoor(word);
}

void
ObjectHandle::sign(Update &u) const
{
    u.writerPublicKey = owner_.publicKey;
    u.signature = KeyRegistry::sign(owner_, u.serializeForSigning());
}

Update
ObjectHandle::makeUpdate(std::vector<UpdateClause> clauses,
                         Timestamp ts) const
{
    Update u;
    u.objectGuid = guid_;
    u.clauses = std::move(clauses);
    u.timestamp = ts;
    sign(u);
    return u;
}

Update
ObjectHandle::makeAppendUpdate(const Bytes &plaintext,
                               VersionNum expected_version,
                               Timestamp ts) const
{
    UpdateClause clause;
    clause.predicates.push_back(CompareVersion{expected_version});
    auto blocks = splitBlocks(plaintext);
    for (std::size_t i = 0; i < blocks.size(); i++) {
        // Cipher positions continue from a generous stride so appends
        // with different base versions never reuse a position.
        std::uint64_t pos = expected_version * (1u << 20) + i;
        clause.actions.push_back(
            AppendBlock{encryptBlock(pos, blocks[i])});
    }
    clause.actions.push_back(
        SetSearchIndex{buildSearchIndex(toString(plaintext))});
    return makeUpdate({std::move(clause)}, ts);
}

Update
ObjectHandle::makeReplaceUpdate(std::uint64_t position,
                                const Bytes &plain,
                                VersionNum expected_version,
                                Timestamp ts) const
{
    UpdateClause clause;
    clause.predicates.push_back(CompareVersion{expected_version});
    std::uint64_t cipher_pos =
        expected_version * (1u << 20) + 0x80000 + position;
    clause.actions.push_back(
        ReplaceBlock{position, encryptBlock(cipher_pos, plain)});
    return makeUpdate({std::move(clause)}, ts);
}

Update
ObjectHandle::makeInsertUpdate(std::uint64_t position,
                               const Bytes &plain,
                               VersionNum expected_version,
                               Timestamp ts) const
{
    UpdateClause clause;
    clause.predicates.push_back(CompareVersion{expected_version});
    std::uint64_t cipher_pos =
        expected_version * (1u << 20) + 0x80000 + position;
    clause.actions.push_back(
        InsertBlock{position, encryptBlock(cipher_pos, plain)});
    return makeUpdate({std::move(clause)}, ts);
}

Update
ObjectHandle::makeDeleteUpdate(std::uint64_t position,
                               VersionNum expected_version,
                               Timestamp ts) const
{
    UpdateClause clause;
    clause.predicates.push_back(CompareVersion{expected_version});
    clause.actions.push_back(DeleteBlock{position});
    return makeUpdate({std::move(clause)}, ts);
}

CompareBlock
ObjectHandle::expectBlock(std::uint64_t logical_position,
                          std::uint64_t cipher_position,
                          const Bytes &plain) const
{
    CompareBlock cb;
    cb.position = logical_position;
    cb.expected = Sha1::hash(encryptBlock(cipher_position, plain));
    return cb;
}

} // namespace oceanstore
