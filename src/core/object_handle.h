/**
 * @file
 * Client-side object handle.
 *
 * Only clients can be trusted with cleartext (Section 1.2): all
 * encryption, decryption, search-index construction and update
 * signing happens here, so that everything handed to the
 * infrastructure is ciphertext plus signatures.  The handle owns the
 * object's read key (position-dependent block cipher), search key and
 * the writer's signing key pair, and turns plaintext edits into the
 * predicate/action updates of Section 4.4.
 */

#ifndef OCEANSTORE_CORE_OBJECT_HANDLE_H
#define OCEANSTORE_CORE_OBJECT_HANDLE_H

#include <string>
#include <vector>

#include "consistency/data_object.h"
#include "consistency/update.h"
#include "crypto/block_cipher.h"
#include "crypto/keys.h"
#include "crypto/searchable.h"

namespace oceanstore {

/** Fixed logical block size used by the handle's helpers. */
constexpr std::size_t defaultBlockSize = 4096;

/** A client's capability bundle for one object. */
class ObjectHandle
{
  public:
    /**
     * Mint a handle for a new object: GUID is the self-certifying
     * hash of the owner key and name (Section 4.1); fresh read and
     * search keys are derived deterministically from the owner's
     * private key and the name (a real client would generate and
     * escrow random keys).
     */
    ObjectHandle(const KeyPair &owner, const std::string &name,
                 std::size_t block_size = defaultBlockSize);

    /** The object's GUID. */
    const Guid &guid() const { return guid_; }

    /** The human-readable name the GUID was minted from. */
    const std::string &name() const { return name_; }

    /** The writer's public key (what ACL entries name). */
    const Bytes &writerPublicKey() const { return owner_.publicKey; }

    /** Logical block size. */
    std::size_t blockSize() const { return blockSize_; }

    // --- plaintext <-> ciphertext ------------------------------------

    /** Split plaintext into block-size chunks (last may be short). */
    std::vector<Bytes> splitBlocks(const Bytes &plaintext) const;

    /**
     * Encrypt plaintext as the block at @p position.  The ciphertext
     * embeds an 8-byte position header (an IV): inserts and deletes
     * shift *logical* positions, but each block remembers the cipher
     * position it was issued at, so decryption never needs external
     * bookkeeping and compare-block stays client-predictable.
     */
    Bytes encryptBlock(std::uint64_t position, const Bytes &plain) const;

    /** Decrypt a ciphertext block (position read from its header). */
    Bytes decryptBlock(const Bytes &cipher) const;

    /** Decrypt a whole object's logical blocks into one buffer. */
    Bytes decryptContent(const std::vector<Bytes> &logical_blocks) const;

    /** Build the encrypted search index for a document. */
    SearchIndex buildSearchIndex(std::string_view document) const;

    /** Produce a search trapdoor for servers. */
    SearchTrapdoor searchTrapdoor(std::string_view word) const;

    // --- update construction ------------------------------------------

    /**
     * Append the whole plaintext as encrypted blocks, guarded by a
     * compare-version predicate against @p expected_version, with an
     * up-to-date search index.
     */
    Update makeAppendUpdate(const Bytes &plaintext,
                            VersionNum expected_version,
                            Timestamp ts) const;

    /** Replace logical block @p position with new plaintext. */
    Update makeReplaceUpdate(std::uint64_t position, const Bytes &plain,
                             VersionNum expected_version,
                             Timestamp ts) const;

    /** Insert a block before @p position (Figure 4 semantics). */
    Update makeInsertUpdate(std::uint64_t position, const Bytes &plain,
                            VersionNum expected_version,
                            Timestamp ts) const;

    /** Delete logical block @p position. */
    Update makeDeleteUpdate(std::uint64_t position,
                            VersionNum expected_version,
                            Timestamp ts) const;

    /**
     * Build an update from explicit clauses (for ACID transactions
     * and custom conflict resolution), then sign it.
     */
    Update makeUpdate(std::vector<UpdateClause> clauses,
                      Timestamp ts) const;

    /**
     * Predicate helper: "the ciphertext block at logical position
     * @p logical_position equals the encryption of @p plain at cipher
     * position @p cipher_position" — computable entirely client-side
     * thanks to the position-dependent cipher (Section 4.4.3): the
     * client hashes the predicted ciphertext without any round-trip.
     */
    CompareBlock expectBlock(std::uint64_t logical_position,
                             std::uint64_t cipher_position,
                             const Bytes &plain) const;

  private:
    void sign(Update &u) const;

    KeyPair owner_;
    std::string name_;
    Guid guid_;
    std::size_t blockSize_;
    BlockCipher readCipher_;
    SearchableCipher searchCipher_;
};

} // namespace oceanstore

#endif // OCEANSTORE_CORE_OBJECT_HANDLE_H
