/**
 * @file
 * The OceanStore universe: full-system integration harness.
 *
 * Composes every substrate into the system of Figures 1 and 5:
 *
 *  - a simulated WAN (src/sim) with geometric latencies;
 *  - a primary tier running Byzantine agreement near the center of
 *    the network ("high-bandwidth, high-connectivity regions");
 *  - a secondary tier of floating replicas with epidemic propagation
 *    and a dissemination tree;
 *  - two-tier data location: attenuated Bloom filters first, the
 *    Plaxton mesh as the deterministic fallback (Section 4.3);
 *  - access control enforced server-side on signed updates;
 *  - deep archival storage coupled to the commit path (Section 4.4.4);
 *  - introspection: access monitoring, cluster recognition,
 *    prefetching and replica management (Section 4.7).
 *
 * Writes follow the paper's update path: client -> primary tier
 * (agreement) -> dissemination tree -> secondary replicas, with
 * archival fragments generated as a side effect of commitment.
 * Reads hit the probabilistic locator and fall back to the global
 * mesh.
 */

#ifndef OCEANSTORE_CORE_UNIVERSE_H
#define OCEANSTORE_CORE_UNIVERSE_H

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "access/acl.h"
#include "access/groups.h"
#include "archive/archival.h"
#include "bloom/location_service.h"
#include "consistency/byzantine.h"
#include "consistency/secondary.h"
#include "core/object_handle.h"
#include "core/versioning.h"
#include "erasure/reed_solomon.h"
#include "introspect/clustering.h"
#include "introspect/confidence.h"
#include "introspect/prefetch.h"
#include "introspect/replica_mgmt.h"
#include "plaxton/mesh.h"
#include "runtime/runtime.h"
#include "runtime/threaded_runtime.h"
#include "sim/churn.h"
#include "storage/node_storage.h"
#include "util/check.h"
#include "util/retry.h"

namespace oceanstore {

/** Which Runtime backend drives the universe. */
enum class RuntimeKind
{
    Sim,      //!< Deterministic discrete-event simulation (default).
    Threaded, //!< Real threads + wall clock (OCEANSTORE_THREADED).
};

/** Universe-wide configuration. */
struct UniverseConfig
{
    std::size_t numServers = 48;   //!< Secondary-tier servers.
    unsigned pbftFaults = 1;       //!< m; the tier has 3m+1 replicas.
    unsigned overlayDegree = 4;    //!< Bloom overlay neighbors.
    unsigned initialHosts = 3;     //!< Floating replicas per new object.
    unsigned archiveDataFragments = 16;
    unsigned archiveTotalFragments = 32;
    unsigned archiveDomains = 4;   //!< Administrative domains.
    bool archiveOnCommit = true;   //!< Couple archival to commits.
    /**
     * Read-path location retries: on a two-tier miss the mesh is
     * repaired and the deterministic lookup re-run, each retry adding
     * its backoff delay to the modeled read latency.  maxAttempts
     * counts the initial lookup; 1 disables retries.
     */
    RetryPolicy locationRetry{1.0, 2.0, 8.0, 3, 0.0};
    std::uint64_t seed = 0x0cea5042u;

    /**
     * Runtime backend (DESIGN.md section 15).  Sim keeps the historic
     * byte-exact behavior; Threaded serves the same API from a real
     * worker pool + timer wheel and requires OCEANSTORE_THREADED.
     */
    RuntimeKind runtime = RuntimeKind::Sim;
    /** Tunables for the threaded backend (ignored in Sim mode). */
    ThreadedConfig threaded;

    NetworkConfig network;
    BloomLocationConfig bloom;
    PlaxtonConfig plaxton;
    SecondaryConfig secondary;
    PbftConfig pbft;
    ArchiveConfig archive;
    ReplicaPolicyConfig replicaPolicy;
    /**
     * Durable storage per node (DESIGN.md section 14).  The default
     * Memory kind preserves the historical crash-is-amnesia behavior;
     * StorageKind::Log gives every server and primary replica an
     * append-only log that survives the crash/restart lifecycle.
     * `storage.faults.seed` is mixed per node.
     */
    StorageSetup storage;
};

/** Result of a write (after the primary tier serialized it). */
struct WriteResult
{
    bool completed = false; //!< Quorum of replies arrived.
    bool committed = false; //!< Predicates held; actions applied.
    VersionNum version = 0; //!< Object version after the update.
    double latency = 0.0;   //!< Client-observed commit latency.
};

/** Result of a read. */
struct ReadResult
{
    bool found = false;
    std::vector<Bytes> blocks; //!< Logical ciphertext blocks.
    VersionNum version = 0;
    double latency = 0.0;      //!< Modeled location + fetch latency.
    bool viaBloom = false;     //!< Satisfied by the probabilistic tier.
    std::size_t servedBy = 0;  //!< Server index that served the read.
};

/** The assembled system. */
class Universe : public NodeLifecycle
{
  public:
    explicit Universe(UniverseConfig cfg = {});
    ~Universe() override;

    Universe(const Universe &) = delete;
    Universe &operator=(const Universe &) = delete;

    // --- infrastructure access ----------------------------------------

    /** The runtime backend every tier is wired through. */
    Runtime &rt() { return *rt_; }

    /** Sim-mode only: the underlying discrete-event simulator. */
    Simulator &
    sim()
    {
        OS_CHECK(sim_ != nullptr, "Universe::sim(): threaded mode");
        return *sim_;
    }

    /** Sim-mode only: the underlying simulated network. */
    Network &
    net()
    {
        OS_CHECK(net_ != nullptr, "Universe::net(): threaded mode");
        return *net_;
    }

    KeyRegistry &registry() { return registry_; }
    PbftCluster &primaryTier() { return *pbft_; }
    SecondaryTier &secondaryTier() { return *tier_; }
    PlaxtonMesh &mesh() { return *mesh_; }
    BloomLocationService &bloomLocator() { return *bloom_; }
    ArchivalSystem &archival() { return *archive_; }

    /** Number of secondary servers. */
    std::size_t numServers() const { return cfg_.numServers; }

    /** The secondary-tier overlay topology (positions + adjacency). */
    const Topology &topology() const { return topo_; }

    // --- users and objects ---------------------------------------------

    /** Mint a user key pair. */
    KeyPair makeUser();

    /**
     * Create an object owned by @p owner: mints the handle, installs
     * the owner-signed ACL on all servers, places initialHosts
     * floating replicas on random servers and publishes them in both
     * location tiers.
     */
    ObjectHandle createObject(const KeyPair &owner,
                              const std::string &name);

    /** Grant @p writer_key write permission on @p handle's object. */
    void grantWrite(const ObjectHandle &handle, const KeyPair &owner,
                    const Bytes &writer_key);

    /**
     * Materialize a working group's roster into the object's ACL
     * (Section 4.2): every current member may write; expelled members
     * lose access on the next sync.  Call again after roster changes.
     */
    void syncGroupAcl(const ObjectHandle &handle, const KeyPair &owner,
                      const WorkingGroup &group);

    /** Server indices currently hosting @p obj. */
    std::vector<std::size_t> hosts(const Guid &obj) const;

    /** Add a floating replica of @p obj on server @p idx. */
    void addHost(const Guid &obj, std::size_t idx);

    /** Remove the floating replica of @p obj from server @p idx. */
    void removeHost(const Guid &obj, std::size_t idx);

    // --- the update path -------------------------------------------------

    /** Submit an update; @p done fires when the tier answers. */
    void write(const Update &u, std::function<void(WriteResult)> done);

    /** Submit and run the simulation until the result arrives. */
    WriteResult writeSync(const Update &u);

    // --- the read path ---------------------------------------------------

    /**
     * Read @p obj starting at server @p from_server: probabilistic
     * location first, global mesh on miss; @p done is scheduled after
     * the modeled location + fetch latency.
     */
    void read(std::size_t from_server, const Guid &obj,
              std::function<void(ReadResult)> done);

    /** Read and run the simulation until the result arrives. */
    ReadResult readSync(std::size_t from_server, const Guid &obj);

    // --- durable storage & the crash/restart lifecycle ------------------

    /** Server @p idx's durable storage handle (disk + backend). */
    NodeStorage &storageOf(std::size_t idx);

    /** Primary-tier replica @p rank's durable storage handle. */
    NodeStorage &primaryStorage(unsigned rank);

    /**
     * Crash secondary server @p idx: its network links go down, the
     * disk-fault injector applies the configured crash plan (torn
     * tail, bit flips) to its image, and every in-memory view of its
     * durable state — storage index, archival fragment map, mesh
     * pointer cache — dies with the process.
     */
    void crashServer(std::size_t idx);

    /**
     * Restart server @p idx: recovery replay over the (possibly
     * damaged) image, then re-serve — archival fragments reloaded
     * from the "frag/" namespace, mesh pointers from "ptr/", hosted
     * floating replicas republished in both location tiers.
     */
    void restartServer(std::size_t idx);

    /** Crash primary-tier replica @p rank (its object state dies). */
    void crashPrimary(unsigned rank);

    /** Restart primary-tier replica @p rank: replays its durable
     *  "ulog/" commit log through the executor. */
    void restartPrimary(unsigned rank);

    /**
     * NodeLifecycle (sim/churn.h): failure injectors route node
     * transitions here so link state and storage stay symmetric.
     * NodeIds of secondary servers and their co-located archival
     * servers map to crashServer/restartServer; primary replicas to
     * crashPrimary/restartPrimary; anything else falls back to raw
     * link state.
     */
    void shutdown(NodeId n) override;
    void restart(NodeId n) override;

    // --- archival ---------------------------------------------------------

    /**
     * Snapshot the object's current committed state into the archive
     * (fragment + disperse).  Returns the archival version's GUID.
     */
    Guid archiveObject(const Guid &obj);

    /** Latest archival GUID for an object (invalid if never archived). */
    Guid latestArchive(const Guid &obj) const;

    /** Reconstruct an archival version; runs the sim until done. */
    ReconstructResult restoreSync(const Guid &archive_guid);

    // --- versioning (Sections 2 and 4.5) -------------------------------

    /** All archived (version, archive GUID) pairs for an object. */
    std::vector<std::pair<VersionNum, Guid>>
    archivedVersions(const Guid &obj) const;

    /**
     * Resolve a permanent version-qualified name to its archival
     * GUID (invalid Guid when that version was never archived or was
     * retired).  A name without a version resolves to the latest.
     */
    Guid resolveVersionedName(const VersionedName &name) const;

    /**
     * Read a historical version of an object by replaying the
     * committed update log on the primary tier ("permanent pointers
     * to information").
     */
    std::optional<DataObject> readVersion(const Guid &obj,
                                          VersionNum v) const;

    /** Modification history of an object (from the primary replica). */
    std::vector<VersionRecord> historyOf(const Guid &obj) const;

    /**
     * Apply a retention policy (Elephant-style, Section 2): retire
     * archival versions the policy does not retain.
     * @return number of versions retired.
     */
    unsigned applyRetention(const Guid &obj,
                            const RetentionPolicy &policy);

    // --- introspection -----------------------------------------------------

    /** The cluster-recognition graph fed by every read. */
    SemanticGraph &semanticGraph() { return semantic_; }

    /** The access-stream prefetcher fed by every read. */
    Prefetcher &prefetcher() { return prefetcher_; }

    /**
     * Confidence estimation over the system's own optimizations
     * (Section 4.7.2): replica creation is gated on the confidence of
     * kind "replica.create"; callers feed outcomes back with observed
     * before/after latencies.
     */
    ConfidenceEstimator &confidence() { return confidence_; }

    /**
     * Run one replica-management epoch over the access counters:
     * create replicas near overloaded hosts, retire disused ones,
     * then reset the counters.  @return enacted actions.
     */
    std::vector<ReplicaAction> runReplicaManagementEpoch();

    /**
     * Collocate semantically clustered objects (Section 4.7.2: the
     * published cluster descriptors "help remote optimization modules
     * collocate and prefetch related files"): for every detected
     * cluster, every member object gains a floating replica on the
     * server already hosting the most cluster members.
     * @return number of replicas created.
     */
    unsigned collocateClusters(double min_weight);

    // --- observability -----------------------------------------------------

    /**
     * One-line JSON health report (DESIGN.md section 16): backend
     * kind, tier shape, and the runtime's live RuntimeStats.  The
     * snapshot is taken on the strand, so it is consistent even while
     * worker threads serve clients; the `runtime.*` gauges are
     * published as a side effect.  Deterministic byte layout on the
     * sim backend (fixed key order, %.12g doubles).
     */
    std::string statusReport();

    // --- simulation driving -------------------------------------------------

    /**
     * Step the simulator until @p pred holds or @p max_time elapses.
     * @return the final value of pred().
     */
    bool runUntil(const std::function<bool()> &pred, double max_time);

    /** Advance runtime time by @p seconds, processing events. */
    void advance(double seconds) { rt_->advance(seconds); }

  private:
    /** Build every tier against rt_ (runs on the runtime strand). */
    void assemble();

    /** Strand-side halves of the wrapped public entry points. */
    void createObjectLocked(const ObjectHandle &handle,
                            const KeyPair &owner);
    Guid archiveObjectLocked(const Guid &obj);
    void crashServerLocked(std::size_t idx);
    void restartServerLocked(std::size_t idx);
    void crashPrimaryLocked(unsigned rank);
    void restartPrimaryLocked(unsigned rank);

    /** Wire the executor / onCommit hooks into the PBFT cluster. */
    void wireCommitPath();

    /** Executor: validate against the ACL and apply to the replica. */
    Bytes executeUpdate(unsigned rank, const Bytes &payload,
                        std::uint64_t seq);

    UniverseConfig cfg_;
    Rng rng_;
    /** Sim mode owns a simulator + network wrapped by a SimRuntime;
     *  threaded mode owns only a ThreadedRuntime (sim_/net_ null). */
    std::unique_ptr<Simulator> sim_;
    std::unique_ptr<Network> net_;
    std::unique_ptr<Runtime> rt_;
    KeyRegistry registry_;

    Topology topo_;
    std::unique_ptr<SecondaryTier> tier_;
    std::unique_ptr<PlaxtonMesh> mesh_;
    std::unique_ptr<BloomLocationService> bloom_;
    std::unique_ptr<PbftCluster> pbft_;
    std::unique_ptr<PbftClient> client_;
    std::unique_ptr<ArchivalSystem> archive_;
    std::unique_ptr<ArchivalClient> archiveClient_;
    std::unique_ptr<ReedSolomonCode> archiveCodec_;

    /** Durable storage handles: one per secondary server (shared by
     *  its co-located archival server and mesh node) and one per
     *  primary-tier replica.  The handles — and the disk images they
     *  own — outlive crashes; only the backends die. */
    std::vector<std::unique_ptr<NodeStorage>> serverStorage_;
    std::vector<std::unique_ptr<NodeStorage>> primaryStorage_;
    /** NodeId -> secondary server index (tier + archival NodeIds). */
    std::map<NodeId, std::size_t> serverIndexByNode_;
    /** NodeId -> primary-tier rank. */
    std::map<NodeId, unsigned> primaryRankByNode_;

    /** Primary-tier replica state: one object map per rank. */
    std::vector<std::map<Guid, DataObject>> primaryObjects_;
    WriteGuard guard_;

    /** Floating-replica placement: object -> hosting server indices. */
    std::map<Guid, std::set<std::size_t>> hosts_;

    /** Archival snapshots per object, per version. */
    std::map<Guid, std::map<VersionNum, Guid>> archives_;

    /** Introspection state. */
    SemanticGraph semantic_;
    Prefetcher prefetcher_;
    ConfidenceEstimator confidence_;
    ReplicaManager replicaMgr_;
    std::map<std::pair<Guid, std::size_t>, std::uint64_t> accessLoad_;
    /** Where reads originate: object -> reader server -> count. */
    std::map<Guid, std::map<std::size_t, std::uint64_t>> readerLoad_;
};

} // namespace oceanstore

#endif // OCEANSTORE_CORE_UNIVERSE_H
