#include "core/universe.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/sim_runtime.h"
#include "runtime/stats.h"
#include "sim/topology.h"
#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct CoreMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id writes, reads, readBloomHits, readMeshHits,
        readMisses;

    CoreMetricIds()
        : reg(&MetricsRegistry::global()),
          writes(reg->counter("core.writes")),
          reads(reg->counter("core.reads")),
          readBloomHits(reg->counter("core.read_bloom_hits")),
          readMeshHits(reg->counter("core.read_mesh_hits")),
          readMisses(reg->counter("core.read_misses"))
    {
    }
};

CoreMetricIds &
coreMetrics()
{
    static CoreMetricIds ids;
    return ids;
}

} // namespace

Universe::Universe(UniverseConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), registry_(cfg.seed ^ 0x5a5a5a5au),
      semantic_(4), prefetcher_(2, 2), replicaMgr_(cfg.replicaPolicy)
{
    // 0. Runtime backend (DESIGN.md section 15).  Sim mode wraps an
    //    owned simulator/network pair in the zero-cost adapter, so
    //    everything below is byte-identical to the pre-Runtime tree;
    //    threaded mode swaps in the worker-pool backend wholesale.
    if (cfg_.runtime == RuntimeKind::Sim) {
        sim_ = std::make_unique<Simulator>();
        net_ = std::make_unique<Network>(*sim_, cfg_.network);
        rt_ = std::make_unique<SimRuntime>(*sim_, *net_, cfg_.seed);
    } else {
        rt_ = std::make_unique<ThreadedRuntime>(cfg_.threaded);
    }

    // Assemble on the strand: in threaded mode this keeps worker and
    // timer callbacks from interleaving with construction; in sim
    // mode execute() is a plain call.
    rt_->execute([&]() { assemble(); });
}

void
Universe::assemble()
{
    // 1. Overlay topology for the secondary tier and Bloom locator.
    topo_ = makeGeometricTopology(cfg_.numServers, cfg_.overlayDegree,
                                  rng_);

    // 2. Secondary tier replicas at the topology's positions (replica
    //    i <-> overlay node i <-> NodeId i).
    tier_ = std::make_unique<SecondaryTier>(*rt_, topo_.positions,
                                            cfg_.secondary);

    // 3. Global location mesh over the secondary servers.
    std::vector<NodeId> members;
    for (std::size_t i = 0; i < cfg_.numServers; i++)
        members.push_back(tier_->replica(i).nodeId());
    mesh_ = std::make_unique<PlaxtonMesh>(*rt_, members, rng_,
                                          cfg_.plaxton);

    // 4. Probabilistic locator over the same overlay.
    bloom_ = std::make_unique<BloomLocationService>(topo_, cfg_.bloom);

    // 5. Primary tier in a well-connected central region.
    cfg_.pbft.m = cfg_.pbftFaults;
    unsigned n = 3 * cfg_.pbftFaults + 1;
    std::vector<std::pair<double, double>> tier_pos;
    for (unsigned r = 0; r < n; r++) {
        double angle = 2.0 * 3.14159265358979 * r / n;
        tier_pos.emplace_back(0.5 + 0.04 * std::cos(angle),
                              0.5 + 0.04 * std::sin(angle));
    }
    pbft_ = std::make_unique<PbftCluster>(*rt_, tier_pos, registry_,
                                          cfg_.pbft);
    primaryObjects_.resize(n);
    client_ = pbft_->makeClient(0.5, 0.5, 1);

    // 6. Archival servers co-located with the secondary servers,
    //    assigned to administrative domains by region.
    std::vector<unsigned> domains;
    unsigned side = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(cfg_.archiveDomains))));
    for (const auto &[x, y] : topo_.positions) {
        unsigned dx = std::min<unsigned>(
            side - 1, static_cast<unsigned>(x * side));
        unsigned dy = std::min<unsigned>(
            side - 1, static_cast<unsigned>(y * side));
        domains.push_back((dx * side + dy) % cfg_.archiveDomains);
    }
    archive_ = std::make_unique<ArchivalSystem>(*rt_, topo_.positions,
                                                domains, cfg_.archive);
    archiveClient_ = archive_->makeClient(0.5, 0.5);
    archiveCodec_ = std::make_unique<ReedSolomonCode>(
        cfg_.archiveDataFragments, cfg_.archiveTotalFragments);

    // 7. Durable storage (DESIGN.md section 14): one handle per
    //    secondary server — shared by the co-located archival server
    //    and mesh node — plus one per primary replica, each with a
    //    node-mixed fault seed so crashes damage disks independently
    //    but deterministically.
    serverStorage_.reserve(cfg_.numServers);
    for (std::size_t i = 0; i < cfg_.numServers; i++) {
        StorageSetup setup = cfg_.storage;
        setup.faults.seed = cfg_.storage.faults.seed ^
                            (0x9e3779b97f4a7c15ull * (i + 1));
        serverStorage_.push_back(
            std::make_unique<NodeStorage>(setup));
        archive_->server(i).attachStorage(serverStorage_[i].get());
        serverIndexByNode_[tier_->replica(i).nodeId()] = i;
        serverIndexByNode_[archive_->server(i).nodeId()] = i;
    }
    for (unsigned r = 0; r < n; r++) {
        StorageSetup setup = cfg_.storage;
        setup.faults.seed = cfg_.storage.faults.seed ^
                            (0xc2b2ae3d27d4eb4full * (r + 1));
        primaryStorage_.push_back(
            std::make_unique<NodeStorage>(setup));
        primaryRankByNode_[pbft_->replica(r).nodeId()] = r;
    }
    mesh_->storageHook = [this](NodeId node) -> StorageBackend * {
        auto it = serverIndexByNode_.find(node);
        if (it == serverIndexByNode_.end() ||
            !serverStorage_[it->second]->running()) {
            return nullptr;
        }
        return &serverStorage_[it->second]->backend();
    };
    pbft_->storageHook = [this](unsigned rank) -> StorageBackend * {
        if (rank >= primaryStorage_.size() ||
            !primaryStorage_[rank]->running()) {
            return nullptr;
        }
        return &primaryStorage_[rank]->backend();
    };

    wireCommitPath();
}

Universe::~Universe()
{
    // Threaded mode: stop the worker pool and timer wheel before any
    // protocol tier (a registered endpoint) is torn down, so no
    // runtime thread can call into a half-destroyed node.
    if (cfg_.runtime == RuntimeKind::Threaded)
        static_cast<ThreadedRuntime &>(*rt_).shutdown();
}

void
Universe::wireCommitPath()
{
    pbft_->executor = [this](unsigned rank, const Bytes &payload,
                             std::uint64_t seq) {
        return executeUpdate(rank, payload, seq);
    };

    pbft_->onCommit = [this](const Bytes &payload, std::uint64_t) {
        // Runs on the rank-0 replica after it applies the update:
        // push the committed result down the dissemination tree and
        // generate archival fragments (Section 4.4.4).
        Update u = Update::deserializeFull(payload);
        auto it = primaryObjects_[0].find(u.objectGuid);
        if (it == primaryObjects_[0].end())
            return;
        VersionNum v = it->second.version();
        // The latest log entry tells us whether this update committed.
        if (it->second.log().empty() ||
            !it->second.log().back().committed) {
            return; // aborted updates do not propagate
        }
        tier_->injectCommitted(u, v);
        if (cfg_.archiveOnCommit)
            archiveObject(u.objectGuid);
    };
}

Bytes
Universe::executeUpdate(unsigned rank, const Bytes &payload,
                        std::uint64_t)
{
    OS_CHECK(rank < primaryObjects_.size(),
             "executeUpdate: rank ", rank, " of ",
             primaryObjects_.size());
    Update u = Update::deserializeFull(payload);

    Bytes result;
    auto reply = [&](bool committed, VersionNum v) {
        ByteWriter w;
        w.putU8(committed ? 1 : 0);
        w.putU64(v);
        return w.take();
    };

    // Writer restriction (Section 4.2): well-behaved servers verify
    // the signature against the object's certified ACL and ignore
    // unauthorized updates.
    if (!guard_.admits(u.objectGuid, u.writerPublicKey,
                       u.serializeForSigning(), u.signature,
                       registry_)) {
        auto it = primaryObjects_[rank].find(u.objectGuid);
        VersionNum v = it == primaryObjects_[rank].end()
                           ? 0
                           : it->second.version();
        return reply(false, v);
    }

    auto it = primaryObjects_[rank].find(u.objectGuid);
    if (it == primaryObjects_[rank].end()) {
        it = primaryObjects_[rank]
                 .emplace(u.objectGuid, DataObject(u.objectGuid))
                 .first;
    }
    ApplyResult res = it->second.apply(u);
    return reply(res.committed, res.version);
}

KeyPair
Universe::makeUser()
{
    // Every public entry point below joins the runtime strand, so in
    // threaded mode any number of client threads may call the
    // Universe API concurrently; in sim mode execute() is a plain
    // call and nothing changes.
    KeyPair kp;
    rt_->execute([&]() { kp = registry_.generate(); });
    return kp;
}

ObjectHandle
Universe::createObject(const KeyPair &owner, const std::string &name)
{
    ObjectHandle handle(owner, name);
    rt_->execute([&]() { createObjectLocked(handle, owner); });
    return handle;
}

void
Universe::createObjectLocked(const ObjectHandle &handle,
                             const KeyPair &owner)
{
    // Owner-signed ACL: the owner may write (Section 4.2).
    Acl acl;
    acl.grant(owner.publicKey,
              static_cast<std::uint8_t>(Privilege::Owner) |
                  static_cast<std::uint8_t>(Privilege::Write) |
                  static_cast<std::uint8_t>(Privilege::Read));
    AclCertificate cert = AclCertificate::issue(handle.guid(), acl,
                                                owner);
    guard_.install(cert, acl, registry_);

    // Place the initial floating replicas and publish them.
    std::size_t want = std::min<std::size_t>(cfg_.initialHosts,
                                             cfg_.numServers);
    auto picks = rng_.sampleIndices(cfg_.numServers, want);
    for (std::size_t idx : picks)
        addHost(handle.guid(), idx);
}

void
Universe::grantWrite(const ObjectHandle &handle, const KeyPair &owner,
                     const Bytes &writer_key)
{
    rt_->execute([&]() {
    const Acl *current = guard_.aclFor(handle.guid());
    Acl acl = current ? *current : Acl();
    acl.grant(writer_key, static_cast<std::uint8_t>(Privilege::Write));
    AclCertificate cert = AclCertificate::issue(handle.guid(), acl,
                                                owner);
    guard_.install(cert, acl, registry_);
    });
}

void
Universe::syncGroupAcl(const ObjectHandle &handle, const KeyPair &owner,
                       const WorkingGroup &group)
{
    rt_->execute([&]() {
    // Materialize from a clean base (owner only) so expelled members
    // do not linger from earlier materializations.
    Acl base;
    base.grant(owner.publicKey,
               static_cast<std::uint8_t>(Privilege::Owner) |
                   static_cast<std::uint8_t>(Privilege::Write) |
                   static_cast<std::uint8_t>(Privilege::Read));
    Acl acl = group.materializeAcl(base);
    AclCertificate cert = AclCertificate::issue(handle.guid(), acl,
                                                owner);
    guard_.install(cert, acl, registry_);
    });
}

unsigned
Universe::collocateClusters(double min_weight)
{
    unsigned created = 0;
    rt_->execute([&]() {
    for (const auto &cluster : semantic_.clusters(min_weight)) {
        // Pick the server already hosting the most cluster members.
        std::map<std::size_t, unsigned> host_counts;
        for (const Guid &obj : cluster) {
            auto hit = hosts_.find(obj);
            if (hit == hosts_.end())
                continue;
            for (std::size_t idx : hit->second)
                host_counts[idx]++;
        }
        if (host_counts.empty())
            continue;
        std::size_t best = host_counts.begin()->first;
        unsigned best_count = 0;
        for (const auto &[idx, count] : host_counts) {
            if (count > best_count) {
                best = idx;
                best_count = count;
            }
        }
        for (const Guid &obj : cluster) {
            if (!hosts_.count(obj))
                continue; // not an object we host (noise GUID)
            if (!hosts_[obj].count(best)) {
                addHost(obj, best);
                created++;
            }
        }
    }
    });
    return created;
}

std::vector<std::size_t>
Universe::hosts(const Guid &obj) const
{
    std::vector<std::size_t> out;
    rt_->execute([&]() {
        auto it = hosts_.find(obj);
        if (it != hosts_.end())
            out.assign(it->second.begin(), it->second.end());
    });
    return out;
}

void
Universe::addHost(const Guid &obj, std::size_t idx)
{
    rt_->execute([&]() {
        if (!hosts_[obj].insert(idx).second)
            return;
        bloom_->addObject(static_cast<NodeId>(idx), obj);
        mesh_->publish(obj, tier_->replica(idx).nodeId());
    });
}

void
Universe::removeHost(const Guid &obj, std::size_t idx)
{
    rt_->execute([&]() {
        auto hit = hosts_.find(obj);
        if (hit == hosts_.end() || !hit->second.erase(idx))
            return;
        bloom_->removeObject(static_cast<NodeId>(idx), obj);
        mesh_->unpublish(obj, tier_->replica(idx).nodeId());
    });
}

void
Universe::write(const Update &u, std::function<void(WriteResult)> done)
{
    rt_->execute([&]() {
    // Root span for the whole update path: serialization, the PBFT
    // rounds and the dissemination push all nest under it.
    ScopedSpan span("core", "core.write", rt_->now());
    {
        CoreMetricIds &cm = coreMetrics();
        cm.reg->inc(cm.writes);
    }
    client_->submit(u.serializeFull(), [done = std::move(done)](
                                           const PbftOutcome &out) {
        WriteResult wr;
        wr.completed = out.completed;
        wr.latency = out.latency;
        if (out.result.size() >= 9) {
            ByteReader r(out.result);
            wr.committed = r.getU8() != 0;
            wr.version = r.getU64();
        }
        if (done)
            done(wr);
    });
    });
}

WriteResult
Universe::writeSync(const Update &u)
{
    WriteResult result;
    bool fired = false;
    write(u, [&](WriteResult wr) {
        result = wr;
        fired = true;
    });
    runUntil([&]() { return fired; }, rt_->now() + 600.0);
    return result;
}

void
Universe::read(std::size_t from_server, const Guid &obj,
               std::function<void(ReadResult)> done)
{
    rt_->execute([&]() {
    ReadResult res;
    ScopedSpan span("core", "core.read", rt_->now());
    CoreMetricIds &cm = coreMetrics();
    cm.reg->inc(cm.reads);

    // Introspection taps every access (Section 4.7.2).
    semantic_.onAccess(obj);
    prefetcher_.onAccess(obj);
    readerLoad_[obj][from_server]++;

    // Tier 1: probabilistic location (Section 4.3.2).
    auto bq = bloom_->query(static_cast<NodeId>(from_server), obj);
    std::size_t holder = invalidNode;
    double latency = 0.0;
    if (bq.found &&
        rt_->isUp(tier_->replica(bq.location).nodeId())) {
        res.viaBloom = true;
        holder = bq.location;
        for (std::size_t i = 1; i < bq.path.size(); i++) {
            latency += rt_->latency(
                tier_->replica(bq.path[i - 1]).nodeId(),
                tier_->replica(bq.path[i]).nodeId());
        }
        // Response routes directly back to the requester.
        latency += rt_->latency(tier_->replica(holder).nodeId(),
                                tier_->replica(from_server).nodeId());
    } else {
        // Tier 2: the global mesh (Section 4.3.3).  Also the fallback
        // when the Bloom tier advertises a crashed holder — its soft
        // state decays lazily, whereas mesh locate() filters dead
        // storers at lookup time.
        auto lr = mesh_->locate(tier_->replica(from_server).nodeId(),
                                obj);
        if (lr.found) {
            // Map the holder NodeId back to its server index.
            for (std::size_t i = 0; i < cfg_.numServers; i++) {
                if (tier_->replica(i).nodeId() == lr.location) {
                    holder = i;
                    break;
                }
            }
            latency = lr.latency +
                      rt_->latency(lr.location,
                                   tier_->replica(from_server).nodeId());
        }
    }

    // Location retry: a miss in both tiers usually means stale mesh
    // state after churn, so repair the pointer paths and re-run the
    // deterministic lookup, charging each retry's backoff delay to
    // the modeled read latency.
    if (holder == static_cast<std::size_t>(invalidNode)) {
        RetrySchedule sched(cfg_.locationRetry,
                            cfg_.seed ^ obj.hash64());
        for (unsigned a = 1; a < cfg_.locationRetry.maxAttempts; a++) {
            auto gap = sched.nextDelay();
            if (!gap.has_value())
                break;
            latency += *gap;
            mesh_->repair();
            auto lr = mesh_->locate(
                tier_->replica(from_server).nodeId(), obj);
            if (!lr.found)
                continue;
            for (std::size_t i = 0; i < cfg_.numServers; i++) {
                if (tier_->replica(i).nodeId() == lr.location) {
                    holder = i;
                    break;
                }
            }
            latency +=
                lr.latency +
                rt_->latency(lr.location,
                             tier_->replica(from_server).nodeId());
            break;
        }
    }

    if (holder != static_cast<std::size_t>(invalidNode)) {
        const DataObject &state =
            tier_->replica(holder).committedObject(obj);
        res.found = true;
        res.blocks = state.logicalContent();
        res.version = state.version();
        res.servedBy = holder;
        accessLoad_[{obj, holder}]++;
        cm.reg->inc(res.viaBloom ? cm.readBloomHits : cm.readMeshHits);
    } else {
        cm.reg->inc(cm.readMisses);
    }
    res.latency = latency;

    rt_->schedule(latency, [res = std::move(res),
                            done = std::move(done)]() {
        if (done)
            done(res);
    });
    });
}

ReadResult
Universe::readSync(std::size_t from_server, const Guid &obj)
{
    ReadResult result;
    bool fired = false;
    read(from_server, obj, [&](ReadResult rr) {
        result = std::move(rr);
        fired = true;
    });
    runUntil([&]() { return fired; }, rt_->now() + 600.0);
    return result;
}

Guid
Universe::archiveObject(const Guid &obj)
{
    Guid out;
    rt_->execute([&]() { out = archiveObjectLocked(obj); });
    return out;
}

Guid
Universe::archiveObjectLocked(const Guid &obj)
{
    auto it = primaryObjects_[0].find(obj);
    if (it == primaryObjects_[0].end())
        return Guid();
    Bytes state = it->second.serializeState();
    // The fragments are generated by the inner tier during commit;
    // dispersal originates from the archival server nearest the
    // primary tier (the center).
    std::size_t source = 0;
    double best = 1e9;
    for (std::size_t i = 0; i < archive_->size(); i++) {
        double d = std::hypot(rt_->xOf(archive_->server(i).nodeId()) -
                                  0.5,
                              rt_->yOf(archive_->server(i).nodeId()) -
                                  0.5);
        if (d < best) {
            best = d;
            source = i;
        }
    }
    Guid archive_guid = archive_->disperse(*archiveCodec_, state,
                                           source);
    archives_[obj][it->second.version()] = archive_guid;
    return archive_guid;
}

Guid
Universe::latestArchive(const Guid &obj) const
{
    Guid out;
    rt_->execute([&]() {
        auto it = archives_.find(obj);
        if (it != archives_.end() && !it->second.empty())
            out = it->second.rbegin()->second;
    });
    return out;
}

std::vector<std::pair<VersionNum, Guid>>
Universe::archivedVersions(const Guid &obj) const
{
    std::vector<std::pair<VersionNum, Guid>> out;
    rt_->execute([&]() {
        auto it = archives_.find(obj);
        if (it != archives_.end())
            out.assign(it->second.begin(), it->second.end());
    });
    return out;
}

Guid
Universe::resolveVersionedName(const VersionedName &name) const
{
    Guid out;
    rt_->execute([&]() {
        auto it = archives_.find(name.guid);
        if (it == archives_.end())
            return;
        if (!name.version.has_value()) {
            if (!it->second.empty())
                out = it->second.rbegin()->second;
            return;
        }
        auto vit = it->second.find(*name.version);
        if (vit != it->second.end())
            out = vit->second;
    });
    return out;
}

std::optional<DataObject>
Universe::readVersion(const Guid &obj, VersionNum v) const
{
    std::optional<DataObject> out;
    rt_->execute([&]() {
        auto it = primaryObjects_[0].find(obj);
        if (it == primaryObjects_[0].end() ||
            v > it->second.version())
            return;
        out = it->second.materializeVersion(v);
    });
    return out;
}

std::vector<VersionRecord>
Universe::historyOf(const Guid &obj) const
{
    std::vector<VersionRecord> out;
    rt_->execute([&]() {
        auto it = primaryObjects_[0].find(obj);
        if (it != primaryObjects_[0].end())
            out = modificationHistory(it->second);
    });
    return out;
}

unsigned
Universe::applyRetention(const Guid &obj, const RetentionPolicy &policy)
{
    unsigned retired = 0;
    rt_->execute([&]() {
        auto it = archives_.find(obj);
        if (it == archives_.end())
            return;
        std::vector<VersionNum> versions;
        for (const auto &[v, g] : it->second)
            versions.push_back(v);
        auto keep = selectRetainedVersions(versions, policy);

        for (auto vit = it->second.begin();
             vit != it->second.end();) {
            if (keep.count(vit->first)) {
                ++vit;
                continue;
            }
            archive_->forget(vit->second);
            vit = it->second.erase(vit);
            retired++;
        }
    });
    return retired;
}

ReconstructResult
Universe::restoreSync(const Guid &archive_guid)
{
    ReconstructResult result;
    bool fired = false;
    // Kick off the reconstruction on the strand; the completion also
    // runs there, and runUntil evaluates the predicate on the strand,
    // so `fired`/`result` are never touched concurrently.
    rt_->execute([&]() {
        archive_->reconstruct(*archiveClient_, archive_guid,
                              [&](const ReconstructResult &r) {
                                  result = r;
                                  fired = true;
                              });
    });
    runUntil([&]() { return fired; }, rt_->now() + 600.0);
    return result;
}

std::vector<ReplicaAction>
Universe::runReplicaManagementEpoch()
{
    std::vector<ReplicaAction> actions;
    rt_->execute([&]() {
    std::vector<ReplicaLoad> loads;
    for (const auto &[obj, host_set] : hosts_) {
        for (std::size_t idx : host_set) {
            ReplicaLoad l;
            l.object = obj;
            l.host = tier_->replica(idx).nodeId();
            auto ait = accessLoad_.find({obj, idx});
            l.requests = ait == accessLoad_.end() ? 0 : ait->second;
            loads.push_back(l);
        }
    }

    // Candidate hosts: new replicas should float toward the readers
    // ("a user's email [migrates] closer to his client", Sec 4.7.2),
    // so rank candidates by proximity to the object's heaviest
    // reader; fall back to the overloaded host's own neighborhood
    // when no reads were observed.
    std::map<NodeId, std::vector<NodeId>> candidates;
    for (const auto &l : loads) {
        NodeId anchor = l.host;
        auto rit = readerLoad_.find(l.object);
        if (rit != readerLoad_.end() && !rit->second.empty()) {
            std::size_t heaviest = rit->second.begin()->first;
            std::uint64_t best = 0;
            for (const auto &[reader, count] : rit->second) {
                if (count > best) {
                    best = count;
                    heaviest = reader;
                }
            }
            anchor = tier_->replica(heaviest).nodeId();
        }
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < cfg_.numServers; i++)
            order.push_back(i);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return rt_->latency(anchor,
                                          tier_->replica(a).nodeId()) <
                             rt_->latency(anchor,
                                          tier_->replica(b).nodeId());
                  });
        std::vector<NodeId> cands;
        for (std::size_t i = 0; i < order.size() && cands.size() < 5;
             i++) {
            cands.push_back(tier_->replica(order[i]).nodeId());
        }
        candidates[l.host] = std::move(cands);
    }

    actions = replicaMgr_.decide(loads, candidates);

    // Confidence estimation (Section 4.7.2): when past replica
    // creations have been hurting, suppress new ones (with periodic
    // probation) to damp harmful feedback cycles.
    if (!confidence_.shouldApply("replica.create")) {
        std::erase_if(actions, [](const ReplicaAction &a) {
            return a.kind == ReplicaAction::Kind::Create;
        });
    }

    for (const auto &a : actions) {
        // Map NodeIds back to server indices.
        std::size_t idx = invalidNode;
        for (std::size_t i = 0; i < cfg_.numServers; i++) {
            if (tier_->replica(i).nodeId() == a.target) {
                idx = i;
                break;
            }
        }
        if (idx == static_cast<std::size_t>(invalidNode))
            continue;
        if (a.kind == ReplicaAction::Kind::Create)
            addHost(a.object, idx);
        else
            removeHost(a.object, idx);
    }
    accessLoad_.clear();
    readerLoad_.clear();
    });
    return actions;
}

NodeStorage &
Universe::storageOf(std::size_t idx)
{
    OS_CHECK(idx < serverStorage_.size(), "storageOf: server ", idx,
             " of ", serverStorage_.size());
    return *serverStorage_[idx];
}

NodeStorage &
Universe::primaryStorage(unsigned rank)
{
    OS_CHECK(rank < primaryStorage_.size(), "primaryStorage: rank ",
             rank, " of ", primaryStorage_.size());
    return *primaryStorage_[rank];
}

void
Universe::crashServer(std::size_t idx)
{
    OS_CHECK(idx < serverStorage_.size(), "crashServer: server ", idx,
             " of ", serverStorage_.size());
    rt_->execute([&]() { crashServerLocked(idx); });
}

void
Universe::crashServerLocked(std::size_t idx)
{
    // Storage dies first so no teardown step below can write through
    // to a disk that should already have stopped (the hooks return
    // nullptr once the backend is gone).
    if (serverStorage_[idx]->running()) {
        auto report = serverStorage_[idx]->crash();
        if (report.tornBytes || report.bitFlips) {
            logInfo("universe: server ", idx, " crash damaged disk (",
                    report.tornBytes, " torn bytes, ",
                    report.bitFlips, " bit flips)");
        }
    }
    NodeId tnode = tier_->replica(idx).nodeId();
    rt_->setDown(tnode);
    rt_->setDown(archive_->server(idx).nodeId());
    // RAM state is amnesia: the archival fragment map empties (only
    // the disk survives) and the mesh forgets the node wholesale.
    archive_->server(idx).clearForCrash();
    mesh_->removeNode(tnode);
}

void
Universe::restartServer(std::size_t idx)
{
    OS_CHECK(idx < serverStorage_.size(), "restartServer: server ",
             idx, " of ", serverStorage_.size());
    rt_->execute([&]() { restartServerLocked(idx); });
}

void
Universe::restartServerLocked(std::size_t idx)
{
    // Recovery replay happens here: constructing the backend over the
    // surviving disk image truncates any torn tail and rejects
    // corrupt records before anything is served.
    if (!serverStorage_[idx]->running())
        serverStorage_[idx]->restart();
    NodeId tnode = tier_->replica(idx).nodeId();
    rt_->setUp(tnode);
    rt_->setUp(archive_->server(idx).nodeId());
    std::size_t frags = archive_->server(idx).restoreFromStorage();
    std::size_t ptrs = mesh_->restoreNode(tnode);
    // Pointers TO this node's floating replicas were purged from the
    // rest of the mesh while it was down; re-deposit them.  (The
    // restoreNode call above only reloads pointers this node stores
    // on behalf of others.)
    std::size_t republished = 0;
    for (const auto &[obj, host_set] : hosts_) {
        if (host_set.count(idx)) {
            mesh_->publish(obj, tnode);
            republished++;
        }
    }
    logInfo("universe: server ", idx, " restarted (", frags,
            " fragments, ", ptrs, " stored pointers, ", republished,
            " republished objects)");
}

void
Universe::crashPrimary(unsigned rank)
{
    OS_CHECK(rank < primaryStorage_.size(), "crashPrimary: rank ",
             rank, " of ", primaryStorage_.size());
    rt_->execute([&]() { crashPrimaryLocked(rank); });
}

void
Universe::crashPrimaryLocked(unsigned rank)
{
    if (primaryStorage_[rank]->running())
        primaryStorage_[rank]->crash();
    rt_->setDown(pbft_->replica(rank).nodeId());
    // The replica's application state is RAM: it must be rebuilt from
    // the durable update log on restart.
    primaryObjects_[rank].clear();
}

void
Universe::restartPrimary(unsigned rank)
{
    OS_CHECK(rank < primaryStorage_.size(), "restartPrimary: rank ",
             rank, " of ", primaryStorage_.size());
    rt_->execute([&]() { restartPrimaryLocked(rank); });
}

void
Universe::restartPrimaryLocked(unsigned rank)
{
    if (!primaryStorage_[rank]->running())
        primaryStorage_[rank]->restart();
    rt_->setUp(pbft_->replica(rank).nodeId());
    std::uint64_t replayed = pbft_->replica(rank).restoreFromLog();
    logInfo("universe: primary rank ", rank, " restarted, replayed ",
            replayed, " committed updates");
}

void
Universe::shutdown(NodeId n)
{
    rt_->execute([&]() {
        auto sit = serverIndexByNode_.find(n);
        if (sit != serverIndexByNode_.end()) {
            crashServerLocked(sit->second);
            return;
        }
        auto pit = primaryRankByNode_.find(n);
        if (pit != primaryRankByNode_.end()) {
            crashPrimaryLocked(pit->second);
            return;
        }
        rt_->setDown(n); // not a storage-owning node: link state only
    });
}

void
Universe::restart(NodeId n)
{
    rt_->execute([&]() {
        auto sit = serverIndexByNode_.find(n);
        if (sit != serverIndexByNode_.end()) {
            restartServerLocked(sit->second);
            return;
        }
        auto pit = primaryRankByNode_.find(n);
        if (pit != primaryRankByNode_.end()) {
            restartPrimaryLocked(pit->second);
            return;
        }
        rt_->setUp(n);
    });
}

bool
Universe::runUntil(const std::function<bool()> &pred, double max_time)
{
    return rt_->runUntil(pred, max_time);
}

std::string
Universe::statusReport()
{
    RuntimeStats stats;
    std::size_t nodes = 0;
    std::size_t objects = 0;
    // Snapshot on the strand so depths and counts are consistent
    // even while workers are serving clients.
    rt_->execute([&]() {
        stats = rt_->stats();
        nodes = rt_->nodeCount();
        objects = hosts_.size();
    });
    publishRuntimeStats(stats);
    std::ostringstream out;
    out << "{\"backend\": \""
        << (rt_->deterministic() ? "sim" : "threaded")
        << "\", \"servers\": " << cfg_.numServers
        << ", \"primaries\": " << (3 * cfg_.pbftFaults + 1)
        << ", \"nodes\": " << nodes << ", \"objects\": " << objects
        << ", \"runtime\": ";
    writeRuntimeStatsJson(stats, out);
    out << "}";
    return out.str();
}

} // namespace oceanstore
