#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace oceanstore {

ZipfGenerator::ZipfGenerator(std::size_t n, double exponent)
    : exponent_(exponent)
{
    OS_CHECK(n > 0, "ZipfGenerator: need at least one object");
    OS_CHECK(exponent >= 0.0, "ZipfGenerator: exponent must be >= 0");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; r++) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
        cdf_[r] = sum;
    }
    for (double &c : cdf_)
        c /= sum;
    cdf_.back() = 1.0; // guard against rounding shortfall
}

std::size_t
ZipfGenerator::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfGenerator::probability(std::size_t rank) const
{
    OS_CHECK(rank < cdf_.size(), "ZipfGenerator: rank out of range");
    return cdf_[rank] - (rank == 0 ? 0.0 : cdf_[rank - 1]);
}

std::size_t
FlashCrowd::sample(const ZipfGenerator &base, Rng &rng,
                   double now) const
{
    if (enabled && now >= start && now < end && rng.chance(share))
        return object;
    return base.sample(rng);
}

DiurnalArrivals::DiurnalArrivals(double base_rate, double amplitude,
                                 double period, unsigned num_regions)
    : baseRate_(base_rate), amplitude_(amplitude), period_(period),
      numRegions_(num_regions == 0 ? 1 : num_regions)
{
    OS_CHECK(base_rate > 0.0, "DiurnalArrivals: rate must be positive");
    OS_CHECK(amplitude >= 0.0 && amplitude <= 1.0,
             "DiurnalArrivals: amplitude must be in [0, 1]");
    OS_CHECK(period > 0.0, "DiurnalArrivals: period must be positive");
}

double
DiurnalArrivals::rate(unsigned region, double t) const
{
    constexpr double two_pi = 2.0 * 3.14159265358979323846;
    double phase = static_cast<double>(region % numRegions_) /
                   static_cast<double>(numRegions_);
    return baseRate_ *
           (1.0 + amplitude_ * std::sin(two_pi * (t / period_ + phase)));
}

double
DiurnalArrivals::nextArrival(Rng &rng, unsigned region,
                             double now) const
{
    double majorant = baseRate_ * (1.0 + amplitude_);
    double t = now;
    // Thinning: the majorant's homogeneous candidates are accepted
    // with probability rate(t)/majorant, yielding the target
    // non-homogeneous process exactly.
    for (;;) {
        t += rng.exponential(1.0 / majorant);
        if (rng.uniform() * majorant <= rate(region, t))
            return t;
    }
}

} // namespace oceanstore
