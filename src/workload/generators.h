/**
 * @file
 * Deterministic workload generators.
 *
 * OceanStore's promiscuous-caching and archival claims are only
 * meaningful under realistic traffic: decentralized-storage traces
 * (PAPERS.md, the IPFS evaluation) are heavily Zipf-skewed in object
 * popularity, punctuated by flash crowds, and session arrival is
 * diurnal and geographically correlated.  This header provides the
 * three generator primitives — all seeded through util/random.h's Rng
 * so every workload is exactly reproducible:
 *
 *  - ZipfGenerator: rank r drawn with probability proportional to
 *    1 / r^s (inverse-CDF over a precomputed table; s = 0 degenerates
 *    to uniform);
 *  - FlashCrowd: a popularity step — between two instants a chosen
 *    object absorbs a fixed share of all draws, the remainder falling
 *    through to the underlying Zipf;
 *  - DiurnalArrivals: a non-homogeneous Poisson arrival process with
 *    sinusoidal intensity and a per-region phase offset (regions from
 *    sim/topology's assignGridRegions), sampled by thinning.
 */

#ifndef OCEANSTORE_WORKLOAD_GENERATORS_H
#define OCEANSTORE_WORKLOAD_GENERATORS_H

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace oceanstore {

/**
 * Zipf-distributed object popularity over ranks [0, n): rank r is
 * drawn with probability (1/(r+1)^s) / H(n, s).  s = 0 is uniform;
 * larger s concentrates mass on the low ranks.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::size_t n, double exponent);

    /** Draw a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Exact model probability of @p rank. */
    double probability(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }
    double exponent() const { return exponent_; }

  private:
    double exponent_;
    /** cdf_[r] = P(rank <= r); strictly increasing, back() == 1. */
    std::vector<double> cdf_;
};

/**
 * Flash-crowd popularity step: inside [start, end) a fraction
 * @p share of draws hit @p object; everything else (and all draws
 * outside the window) falls through to the base Zipf.
 */
struct FlashCrowd
{
    bool enabled = false;
    double start = 0.0;     //!< Sim time the crowd arrives.
    double end = 0.0;       //!< Sim time it disperses.
    std::size_t object = 0; //!< The suddenly-popular rank.
    double share = 0.8;     //!< Fraction of draws redirected.

    /** Draw a rank at sim time @p now. */
    std::size_t sample(const ZipfGenerator &base, Rng &rng,
                       double now) const;
};

/**
 * Non-homogeneous Poisson session arrival with diurnal intensity:
 *
 *   rate(t) = baseRate * (1 + amplitude * sin(2*pi*(t/period + ph)))
 *
 * where ph is a per-region phase offset (region / numRegions of a
 * full cycle) — regions on the "other side" of the grid peak half a
 * period later, a coarse model of timezone-correlated load.  Sampled
 * by thinning against the constant majorant rate.
 */
class DiurnalArrivals
{
  public:
    /** @p amplitude must lie in [0, 1] so the rate stays nonnegative. */
    DiurnalArrivals(double base_rate, double amplitude, double period,
                    unsigned num_regions);

    /** Instantaneous arrival rate for @p region at sim time @p t. */
    double rate(unsigned region, double t) const;

    /**
     * Time of the next arrival in @p region strictly after @p now
     * (thinning: candidate gaps from the majorant rate, accepted with
     * probability rate/majorant).
     */
    double nextArrival(Rng &rng, unsigned region, double now) const;

  private:
    double baseRate_;
    double amplitude_;
    double period_;
    unsigned numRegions_;
};

} // namespace oceanstore

#endif // OCEANSTORE_WORKLOAD_GENERATORS_H
