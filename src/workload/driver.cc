#include "workload/driver.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "util/check.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct WorkloadMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id sessions, reads, readMisses, writes, restores;

    WorkloadMetricIds()
        : reg(&MetricsRegistry::global()),
          sessions(reg->counter("workload.sessions")),
          reads(reg->counter("workload.reads")),
          readMisses(reg->counter("workload.read_misses")),
          writes(reg->counter("workload.writes")),
          restores(reg->counter("workload.restores"))
    {
    }
};

WorkloadMetricIds &
wlMetrics()
{
    static WorkloadMetricIds ids;
    return ids;
}

constexpr std::uint64_t fnvOffset = 1469598103934665603ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

/** Timestamp tie-breaker identifying the driver as the client. */
constexpr std::uint64_t driverClientId = 0x70adu;

} // namespace

WorkloadDriver::WorkloadDriver(Universe &universe, WorkloadPlan plan)
    : universe_(universe), plan_(plan), rng_(plan.seed),
      zipf_(plan.numObjects, plan.zipfExponent),
      arrivals_(plan.arrivalRate, plan.diurnalAmplitude,
                plan.diurnalPeriod,
                plan.regionGrid * plan.regionGrid),
      traceHash_(fnvOffset)
{
    OS_CHECK(plan_.payloadBytes > 0 &&
                 plan_.payloadBytes <= defaultBlockSize,
             "WorkloadPlan: payload must fit one logical block");
    OS_CHECK(plan_.minOpsPerSession >= 1 &&
                 plan_.minOpsPerSession <= plan_.maxOpsPerSession,
             "WorkloadPlan: bad ops-per-session range");
    OS_CHECK(!plan_.flash.enabled ||
                 plan_.flash.object < plan_.numObjects,
             "WorkloadPlan: flash-crowd object out of range");

    // Geographic regions over the secondary-tier overlay.
    std::vector<unsigned> region =
        assignGridRegions(universe_.topology(), plan_.regionGrid);
    regionServers_.resize(plan_.regionGrid * plan_.regionGrid);
    for (std::size_t s = 0; s < region.size(); s++)
        regionServers_[region[s]].push_back(s);
    arrivalTimers_.assign(regionServers_.size(), invalidEventId);

    owner_ = universe_.makeUser();
    objects_.resize(plan_.numObjects);
    for (std::size_t i = 0; i < plan_.numObjects; i++) {
        objects_[i].handle = std::make_unique<ObjectHandle>(
            universe_.createObject(owner_,
                                   "wl/obj" + std::to_string(i)));
    }
    stats_.objectReads.assign(plan_.numObjects, 0);

    if (plan_.restoreFraction > 0.0)
        archClient_ = universe_.archival().makeClient(0.5, 0.5);
}

WorkloadDriver::~WorkloadDriver()
{
    for (EventId id : arrivalTimers_)
        universe_.rt().cancel(id);
    for (Session &s : sessions_)
        universe_.rt().cancel(s.timer);
    universe_.rt().cancel(crashTimer_);
    universe_.rt().cancel(recoverTimer_);
}

const ObjectHandle &
WorkloadDriver::handle(std::size_t i) const
{
    OS_CHECK(i < objects_.size(), "WorkloadDriver: rank out of range");
    return *objects_[i].handle;
}

VersionNum
WorkloadDriver::version(std::size_t i) const
{
    OS_CHECK(i < objects_.size(), "WorkloadDriver: rank out of range");
    return objects_[i].version;
}

Bytes
WorkloadDriver::payloadFor(std::size_t i, VersionNum v) const
{
    // Pure function of (rank, version): byte k of the payload is an
    // FNV mix of the triple, so any committed prefix is recomputable
    // without history.
    Bytes out(plan_.payloadBytes);
    std::uint64_t h = fnvOffset;
    h = (h ^ (i + 1)) * fnvPrime;
    h = (h ^ v) * fnvPrime;
    for (std::size_t k = 0; k < out.size(); k++) {
        h = (h ^ k) * fnvPrime;
        out[k] = static_cast<std::uint8_t>(h >> 32);
    }
    return out;
}

Bytes
WorkloadDriver::expectedContent(std::size_t i, VersionNum v) const
{
    Bytes all;
    all.reserve(plan_.payloadBytes * v);
    for (VersionNum ver = 1; ver <= v; ver++) {
        Bytes p = payloadFor(i, ver);
        all.insert(all.end(), p.begin(), p.end());
    }
    return all;
}

void
WorkloadDriver::mix(std::uint64_t value)
{
    traceHash_ = (traceHash_ ^ value) * fnvPrime;
}

bool
WorkloadDriver::done() const
{
    // Arrival chains self-terminate past plan_.duration, so no time
    // clause is needed: quiescence of the three counters is complete.
    return chainsLive_ == 0 && sessionsLive_ == 0 && outstanding_ == 0;
}

const WorkloadStats &
WorkloadDriver::run()
{
    OS_CHECK(!ran_, "WorkloadDriver::run is single-shot");
    ran_ = true;

    // Optional cold-restart stage: crash and recovery land at fixed
    // sim times, so they interleave with the session schedule the
    // same way on every run of the same plan.
    if (plan_.crashAt >= 0.0) {
        crashTimer_ = universe_.rt().scheduleAt(
            plan_.crashAt,
            [this]() { universe_.crashServer(plan_.crashServerIndex); });
        if (plan_.recoverAt >= 0.0) {
            OS_CHECK(plan_.recoverAt > plan_.crashAt,
                     "WorkloadPlan: recoverAt must follow crashAt");
            recoverTimer_ = universe_.rt().scheduleAt(
                plan_.recoverAt, [this]() {
                    universe_.restartServer(plan_.crashServerIndex);
                });
        }
    }

    for (unsigned r = 0; r < regionServers_.size(); r++) {
        if (regionServers_[r].empty())
            continue; // no servers landed in this grid cell
        chainsLive_++;
        armArrival(r, arrivals_.nextArrival(rng_, r, 0.0));
    }

    // Drain with an adaptive deadline.  The base window covers the
    // plan duration plus a generous session tail; after that the
    // deadline extends only while ops keep completing.  Under faults
    // a serialized write chain can legitimately take one client
    // give-up cycle (~80s of sim time) per queued append, so a fixed
    // deadline either aborts live runs or balloons for clean ones —
    // progress, not wall position, is the real liveness signal.
    double deadline = plan_.duration +
                      plan_.maxOpsPerSession *
                          (plan_.thinkTime + 30.0) +
                      60.0;
    const double grace = 120.0; // > one write give-up cycle
    std::uint64_t last_ops = ~0ull;
    while (!universe_.runUntil([this]() { return done(); }, deadline)) {
        std::uint64_t ops =
            stats_.reads + stats_.writes + stats_.restores;
        OS_CHECK(ops != last_ops,
                 "WorkloadDriver: run deadlocked at t=",
                 universe_.rt().now(), " (chains=", chainsLive_,
                 " sessions=", sessionsLive_,
                 " outstanding=", outstanding_, ")");
        last_ops = ops;
        deadline = universe_.rt().now() + grace;
    }
    return stats_;
}

void
WorkloadDriver::armArrival(unsigned region, double when)
{
    if (when > plan_.duration) {
        chainsLive_--;
        return;
    }
    arrivalTimers_[region] = universe_.rt().scheduleAt(
        when, [this, region, when]() {
            startSession(region);
            armArrival(region,
                       arrivals_.nextArrival(rng_, region, when));
        });
}

void
WorkloadDriver::startSession(unsigned region)
{
    WorkloadMetricIds &wm = wlMetrics();
    stats_.sessions++;
    wm.reg->inc(wm.sessions);
    sessionsLive_++;

    Session s;
    s.region = region;
    s.home = rng_.pick(regionServers_[region]);
    s.opsLeft = static_cast<unsigned>(
        rng_.between(plan_.minOpsPerSession, plan_.maxOpsPerSession));
    sessions_.push_back(s);
    nextOp(sessions_.size() - 1);
}

void
WorkloadDriver::scheduleNextOp(std::size_t sid)
{
    sessions_[sid].timer = universe_.rt().schedule(
        rng_.exponential(plan_.thinkTime),
        [this, sid]() { nextOp(sid); });
}

void
WorkloadDriver::nextOp(std::size_t sid)
{
    Session &s = sessions_[sid];
    if (s.opsLeft == 0) {
        sessionsLive_--;
        return;
    }
    s.opsLeft--;

    std::size_t obj = plan_.flash.sample(zipf_, rng_,
                                         universe_.rt().now());
    if (rng_.chance(plan_.readFraction)) {
        if (plan_.restoreFraction > 0.0 &&
            rng_.chance(plan_.restoreFraction) &&
            universe_.latestArchive(objects_[obj].handle->guid()) !=
                Guid()) {
            issueRestore(sid, obj);
        } else {
            issueRead(sid, obj);
        }
    } else {
        // Fire-and-forget from the session's view: the driver
        // serializes appends per object, the session moves on after
        // its think time.
        ObjectState &o = objects_[obj];
        if (o.writing)
            o.queuedWrites++;
        else
            issueWrite(obj);
        scheduleNextOp(sid);
    }
}

void
WorkloadDriver::issueRead(std::size_t sid, std::size_t obj)
{
    WorkloadMetricIds &wm = wlMetrics();
    stats_.reads++;
    stats_.objectReads[obj]++;
    wm.reg->inc(wm.reads);
    outstanding_++;

    universe_.read(
        sessions_[sid].home, objects_[obj].handle->guid(),
        [this, sid, obj](ReadResult r) {
            outstanding_--;
            mix(0x52); // 'R'
            mix(obj);
            mix(r.found ? r.version : ~0ull);
            if (!r.found) {
                WorkloadMetricIds &m = wlMetrics();
                stats_.readMisses++;
                m.reg->inc(m.readMisses);
            } else {
                // The read must return exactly the committed append
                // prefix for the version it claims to serve.
                Bytes got =
                    objects_[obj].handle->decryptContent(r.blocks);
                if (got != expectedContent(obj, r.version))
                    stats_.readMismatches++;
            }
            scheduleNextOp(sid);
        });
}

void
WorkloadDriver::issueRestore(std::size_t sid, std::size_t obj)
{
    WorkloadMetricIds &wm = wlMetrics();
    stats_.restores++;
    wm.reg->inc(wm.restores);
    outstanding_++;

    Guid archive =
        universe_.latestArchive(objects_[obj].handle->guid());
    universe_.archival().reconstruct(
        *archClient_, archive,
        [this, sid, obj](const ReconstructResult &r) {
            outstanding_--;
            mix(0x41); // 'A'
            mix(obj);
            mix(r.success ? r.fragmentsReceived : ~0ull);
            if (!r.success)
                stats_.restoreFailures++;
            scheduleNextOp(sid);
        });
}

void
WorkloadDriver::issueWrite(std::size_t obj)
{
    ObjectState &o = objects_[obj];
    o.writing = true;
    outstanding_++;

    VersionNum expected = o.version;
    Update u = o.handle->makeAppendUpdate(
        payloadFor(obj, expected + 1), expected,
        {++ts_, driverClientId});
    universe_.write(u, [this, obj](WriteResult wr) {
        outstanding_--;
        WorkloadMetricIds &wm = wlMetrics();
        stats_.writes++;
        wm.reg->inc(wm.writes);
        mix(0x57); // 'W'
        mix(obj);
        mix(wr.committed ? wr.version : ~0ull);

        ObjectState &o = objects_[obj];
        if (!wr.completed) {
            // The client exhausted its rebroadcasts: the append may
            // or may not land later.  The next abort reply carries
            // the authoritative version, so the chain resyncs.
            stats_.writeTimeouts++;
        } else if (wr.committed) {
            o.version = wr.version;
        } else {
            stats_.writeAborts++;
            // An abort reply reports the object's current version;
            // adopt it so one stale expectation (e.g. after a write
            // timeout that later committed) cannot wedge the chain.
            o.version = std::max(o.version, wr.version);
        }
        o.writing = false;
        if (o.queuedWrites > 0) {
            o.queuedWrites--;
            issueWrite(obj);
        }
    });
}

} // namespace oceanstore
