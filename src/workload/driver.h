/**
 * @file
 * Trace-driven workload driver.
 *
 * A WorkloadPlan describes a deterministic traffic mix — Zipf object
 * popularity, an optional flash crowd, diurnal geo-correlated session
 * arrival over the topology's grid regions, and an optional
 * archival-restore share — and WorkloadDriver replays it against a
 * core::Universe entirely inside the discrete-event simulator:
 *
 *  - sessions arrive per region (non-homogeneous Poisson, phase
 *    offset per region) at a home server drawn from that region;
 *  - each session performs a think-time-separated run of operations:
 *    reads (verified byte-for-byte against the committed append
 *    history), writes (appends serialized per object so the
 *    compare-version predicate never self-aborts), and archival
 *    restores;
 *  - every completion is folded into an FNV-1a trace hash, so two
 *    runs of the same plan and seed must produce the same hash —
 *    the workload-level determinism contract used by the tests.
 *
 * Payload bytes are a pure function of (object, version): any read
 * can be verified against the expected append prefix without the
 * driver retaining per-write history.
 */

#ifndef OCEANSTORE_WORKLOAD_DRIVER_H
#define OCEANSTORE_WORKLOAD_DRIVER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/universe.h"
#include "workload/generators.h"

namespace oceanstore {

/** A deterministic workload description. */
struct WorkloadPlan
{
    std::size_t numObjects = 8;   //!< Distinct objects (Zipf ranks).
    double zipfExponent = 0.9;    //!< Popularity skew; 0 = uniform.
    std::size_t payloadBytes = 96; //!< Plaintext bytes per append.

    double duration = 40.0;       //!< Sim seconds of session arrival.
    double arrivalRate = 0.5;     //!< Mean session arrivals/s/region.
    double diurnalAmplitude = 0.6; //!< Sinusoid amplitude in [0, 1].
    double diurnalPeriod = 40.0;  //!< Sim seconds per "day".
    unsigned regionGrid = 2;      //!< Grid regions per axis.

    unsigned minOpsPerSession = 2;
    unsigned maxOpsPerSession = 5;
    double thinkTime = 1.0;       //!< Mean pause between session ops.

    double readFraction = 0.7;    //!< Reads vs writes per op.
    double restoreFraction = 0.0; //!< Share of reads done as restores.

    FlashCrowd flash;             //!< Optional popularity step.

    /**
     * Optional mid-run cold restart (DESIGN.md section 14): at sim
     * time crashAt the driver crashes secondary server
     * crashServerIndex through the Universe lifecycle (disk faults
     * applied, RAM state lost), and at recoverAt restarts it from its
     * durable log.  Negative times disable the stage.  The schedule
     * is part of the plan, so the trace hash stays a pure function of
     * (plan, seed) with the restart included.
     */
    double crashAt = -1.0;
    double recoverAt = -1.0;
    std::size_t crashServerIndex = 0;

    std::uint64_t seed = 0x30ad1u;
};

/** Aggregate outcome of one driver run. */
struct WorkloadStats
{
    std::uint64_t sessions = 0;
    std::uint64_t reads = 0;
    std::uint64_t readMisses = 0;     //!< Location failed.
    std::uint64_t readMismatches = 0; //!< Bytes differed from history.
    std::uint64_t writes = 0;
    std::uint64_t writeAborts = 0;    //!< Predicate rejected a write.
    std::uint64_t writeTimeouts = 0;  //!< Client gave up; fate unknown.
    std::uint64_t restores = 0;
    std::uint64_t restoreFailures = 0;
    /** Per-object read counts (Zipf rank -> observed hits). */
    std::vector<std::uint64_t> objectReads;
};

/**
 * Replays a WorkloadPlan against a Universe.  Single-shot: construct,
 * run(), inspect.  The driver owns only client-side state (handles,
 * timers, the trace hash); all infrastructure belongs to the
 * Universe, which must outlive the driver.
 */
class WorkloadDriver
{
  public:
    WorkloadDriver(Universe &universe, WorkloadPlan plan);
    ~WorkloadDriver();

    WorkloadDriver(const WorkloadDriver &) = delete;
    WorkloadDriver &operator=(const WorkloadDriver &) = delete;

    /**
     * Run the plan to completion: session arrival for plan.duration,
     * then drain every in-flight operation.  OS_CHECKs that the run
     * drains within a generous deadline.
     */
    const WorkloadStats &run();

    /** FNV-1a hash over every operation completion (order-sensitive). */
    std::uint64_t traceHash() const { return traceHash_; }

    const WorkloadStats &stats() const { return stats_; }

    /** The handle of Zipf rank @p i (for test-side verification). */
    const ObjectHandle &handle(std::size_t i) const;

    /** Committed version of rank @p i as the driver observed it. */
    VersionNum version(std::size_t i) const;

    /** Expected plaintext of rank @p i at version @p v (the
     *  deterministic append prefix: payloads 1..v concatenated). */
    Bytes expectedContent(std::size_t i, VersionNum v) const;

  private:
    struct ObjectState
    {
        std::unique_ptr<ObjectHandle> handle;
        VersionNum version = 0;    //!< Last commit we saw.
        bool writing = false;      //!< An append is in flight.
        unsigned queuedWrites = 0; //!< Appends waiting their turn.
    };

    struct Session
    {
        unsigned region = 0;
        std::size_t home = 0; //!< Server index reads originate from.
        unsigned opsLeft = 0;
        EventId timer = invalidEventId;
    };

    /** Deterministic payload of (rank, version) — seed-independent. */
    Bytes payloadFor(std::size_t i, VersionNum v) const;

    void armArrival(unsigned region, double when);
    void startSession(unsigned region);
    void nextOp(std::size_t sid);
    void issueRead(std::size_t sid, std::size_t obj);
    void issueRestore(std::size_t sid, std::size_t obj);
    void issueWrite(std::size_t obj);
    void scheduleNextOp(std::size_t sid);
    void mix(std::uint64_t value);
    bool done() const;

    Universe &universe_;
    WorkloadPlan plan_;
    Rng rng_;
    ZipfGenerator zipf_;
    DiurnalArrivals arrivals_;

    KeyPair owner_;
    std::vector<ObjectState> objects_;
    std::vector<Session> sessions_;
    /** region id -> server indices in that region (empty = skipped). */
    std::vector<std::vector<std::size_t>> regionServers_;
    std::vector<EventId> arrivalTimers_;
    EventId crashTimer_ = invalidEventId;
    EventId recoverTimer_ = invalidEventId;
    std::unique_ptr<ArchivalClient> archClient_;

    WorkloadStats stats_;
    std::uint64_t traceHash_;
    std::uint64_t ts_ = 0;        //!< Update timestamp clock.
    unsigned chainsLive_ = 0;     //!< Regions still spawning sessions.
    std::uint64_t sessionsLive_ = 0;
    std::uint64_t outstanding_ = 0; //!< In-flight reads/writes/restores.
    bool ran_ = false;
};

} // namespace oceanstore

#endif // OCEANSTORE_WORKLOAD_DRIVER_H
