#include "naming/resolver.h"

#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

NameResolver::NameResolver(DirectoryFetcher fetcher)
    : fetcher_(std::move(fetcher))
{
    if (!fetcher_)
        fatal("NameResolver: null directory fetcher");
}

void
NameResolver::addRoot(const std::string &nickname, const Guid &dir_guid)
{
    OS_CHECK(nickname.find(':') == std::string::npos,
             "NameResolver: root nickname contains ':'");
    OS_CHECK(dir_guid.valid(), "NameResolver: invalid root GUID");
    roots_[nickname] = dir_guid;
}

void
NameResolver::removeRoot(const std::string &nickname)
{
    roots_.erase(nickname);
}

std::vector<std::string>
NameResolver::roots() const
{
    std::vector<std::string> out;
    out.reserve(roots_.size());
    for (const auto &[name, guid] : roots_)
        out.push_back(name);
    return out;
}

ResolveResult
NameResolver::resolve(const std::string &path) const
{
    ResolveResult res;

    auto colon = path.find(':');
    if (colon == std::string::npos)
        return res;
    std::string root_name = path.substr(0, colon);
    auto rit = roots_.find(root_name);
    if (rit == roots_.end())
        return res;

    // Split the remainder on '/', dropping a leading slash.
    std::string rest = path.substr(colon + 1);
    if (!rest.empty() && rest.front() == '/')
        rest.erase(rest.begin());

    std::vector<std::string> components;
    std::string cur;
    for (char c : rest) {
        if (c == '/') {
            if (cur.empty())
                return res; // empty component
            components.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        components.push_back(cur);

    Guid current = rit->second;
    EntryKind kind = EntryKind::Directory;
    for (std::size_t i = 0; i < components.size(); i++) {
        if (kind != EntryKind::Directory)
            return res; // tried to descend through a leaf
        auto payload = fetcher_(current);
        if (!payload.has_value())
            return res;
        Directory dir;
        try {
            dir = Directory::deserialize(*payload);
        } catch (const std::exception &) {
            return res; // corrupt directory payload
        }
        res.directoriesTraversed++;
        auto entry = dir.lookup(components[i]);
        if (!entry.has_value())
            return res;
        current = entry->target;
        kind = entry->kind;
    }

    res.found = true;
    res.target = current;
    res.kind = kind;
    return res;
}

Guid
NameResolver::selfCertifyingGuid(const Bytes &owner_pub_key,
                                 const std::string &name)
{
    return Guid::forObject(owner_pub_key, name);
}

bool
NameResolver::verifyOwnership(const Guid &guid,
                              const Bytes &owner_pub_key,
                              const std::string &name)
{
    return Guid::forObject(owner_pub_key, name) == guid;
}

} // namespace oceanstore
