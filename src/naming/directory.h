/**
 * @file
 * Directory objects (Section 4.1).
 *
 * "Certain OceanStore objects act as directories, mapping human-
 * readable names to GUIDs.  To allow arbitrary directory hierarchies
 * to be built, we allow directories to contain pointers to other
 * directories."  A directory is an ordinary OceanStore object whose
 * payload is the serialized entry map, so it inherits replication,
 * versioning and archival for free.
 */

#ifndef OCEANSTORE_NAMING_DIRECTORY_H
#define OCEANSTORE_NAMING_DIRECTORY_H

#include <map>
#include <optional>
#include <string>

#include "crypto/guid.h"
#include "util/bytes.h"

namespace oceanstore {

/** Kind of a directory entry. */
enum class EntryKind : std::uint8_t
{
    Object = 0,    //!< Leaf object.
    Directory = 1, //!< Pointer to another directory object.
};

/** One name binding inside a directory. */
struct DirectoryEntry
{
    Guid target;
    EntryKind kind = EntryKind::Object;

    bool operator==(const DirectoryEntry &) const = default;
};

/**
 * In-memory form of a directory object's payload.
 *
 * Directory payloads serialize to a canonical byte string so that the
 * same logical directory always hashes identically.
 */
class Directory
{
  public:
    Directory() = default;

    /** Bind @p name to @p entry (replacing any previous binding). */
    void bind(const std::string &name, const DirectoryEntry &entry);

    /** Remove a binding.  @return true if it existed. */
    bool unbind(const std::string &name);

    /** Look up a binding. */
    std::optional<DirectoryEntry> lookup(const std::string &name) const;

    /** All bindings, sorted by name. */
    const std::map<std::string, DirectoryEntry> &entries() const
    {
        return entries_;
    }

    /** Canonical serialized payload. */
    Bytes serialize() const;

    /** Parse a serialized payload. @throws on malformed input. */
    static Directory deserialize(const Bytes &payload);

  private:
    std::map<std::string, DirectoryEntry> entries_;
};

} // namespace oceanstore

#endif // OCEANSTORE_NAMING_DIRECTORY_H
