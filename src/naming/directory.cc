#include "naming/directory.h"

#include <stdexcept>

namespace oceanstore {

void
Directory::bind(const std::string &name, const DirectoryEntry &entry)
{
    entries_[name] = entry;
}

bool
Directory::unbind(const std::string &name)
{
    return entries_.erase(name) > 0;
}

std::optional<DirectoryEntry>
Directory::lookup(const std::string &name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

Bytes
Directory::serialize() const
{
    ByteWriter w;
    w.putU32(static_cast<std::uint32_t>(entries_.size()));
    for (const auto &[name, entry] : entries_) {
        w.putString(name);
        w.putRaw(entry.target.toBytes());
        w.putU8(static_cast<std::uint8_t>(entry.kind));
    }
    return w.take();
}

Directory
Directory::deserialize(const Bytes &payload)
{
    Directory dir;
    ByteReader r(payload);
    std::uint32_t n = r.getU32();
    for (std::uint32_t i = 0; i < n; i++) {
        std::string name = r.getString();
        Guid target = Guid::fromBytes(r.getRaw(Guid::numBytes));
        auto kind = static_cast<EntryKind>(r.getU8());
        if (kind != EntryKind::Object && kind != EntryKind::Directory)
            throw std::invalid_argument("Directory: bad entry kind");
        dir.bind(name, DirectoryEntry{target, kind});
    }
    if (!r.exhausted())
        throw std::invalid_argument("Directory: trailing bytes");
    return dir;
}

} // namespace oceanstore
