/**
 * @file
 * Self-certifying path resolution (Section 4.1).
 *
 * Object GUIDs are the secure hash of the owner's key and a human-
 * readable name (self-certifying names, after Mazières), so servers
 * can verify ownership.  Users choose several directories as *roots*
 * secured by external means and resolve multi-component paths through
 * directory objects; "such root directories are only roots with
 * respect to the clients that use them; the system as a whole has no
 * one root" — the locally linked name spaces of SDSI.
 */

#ifndef OCEANSTORE_NAMING_RESOLVER_H
#define OCEANSTORE_NAMING_RESOLVER_H

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "naming/directory.h"

namespace oceanstore {

/** Outcome of a path resolution. */
struct ResolveResult
{
    bool found = false;
    Guid target;
    EntryKind kind = EntryKind::Object;
    unsigned directoriesTraversed = 0;
};

/**
 * A per-client name space: a set of locally trusted roots plus the
 * resolution walk.  Fetching a directory object's current payload is
 * delegated to the embedding system via a callback (in the full
 * system this is an OceanStore read).
 */
class NameResolver
{
  public:
    /** Fetches the payload of a directory object by GUID. */
    using DirectoryFetcher =
        std::function<std::optional<Bytes>(const Guid &)>;

    explicit NameResolver(DirectoryFetcher fetcher);

    /**
     * Register a trusted root under a local nickname.  Roots are
     * secured by external methods (e.g. a public key authority), so
     * the binding is asserted, not derived.
     */
    void addRoot(const std::string &nickname, const Guid &dir_guid);

    /** Remove a trusted root. */
    void removeRoot(const std::string &nickname);

    /**
     * Resolve "root:/a/b/c".  Each component except the last must be
     * a directory.  Empty components are rejected.
     */
    ResolveResult resolve(const std::string &path) const;

    /** Nicknames of all registered roots. */
    std::vector<std::string> roots() const;

    /**
     * Compute the self-certifying GUID for (owner key, name) — the
     * way every object GUID in the system is minted.
     */
    static Guid selfCertifyingGuid(const Bytes &owner_pub_key,
                                   const std::string &name);

    /**
     * Verify a claimed (owner key, name) pair against a GUID: anyone
     * can check ownership without consulting an authority.
     */
    static bool verifyOwnership(const Guid &guid,
                                const Bytes &owner_pub_key,
                                const std::string &name);

  private:
    DirectoryFetcher fetcher_;
    std::map<std::string, Guid> roots_;
};

} // namespace oceanstore

#endif // OCEANSTORE_NAMING_RESOLVER_H
