/**
 * @file
 * Per-node durable storage handle (DESIGN.md section 14).
 *
 * A NodeStorage is what `core::Universe` creates for every durable
 * state owner (archival server, pbft replica, mesh node).  It owns
 * the pieces with *different* lifetimes:
 *
 *  - the DiskImage and DiskFaultInjector live as long as the node
 *    identity does — they survive crashes;
 *  - the StorageBackend is process state: crash() destroys it (after
 *    letting the injector tear/corrupt the image) and restart()
 *    rebuilds it, which for the log backend *is* recovery replay.
 *
 * The Memory kind keeps the historical semantics: a crash loses
 * everything, restart comes back empty.  It is the default so every
 * pre-storage scenario behaves exactly as before.
 */

#ifndef OCEANSTORE_STORAGE_NODE_STORAGE_H
#define OCEANSTORE_STORAGE_NODE_STORAGE_H

#include <memory>

#include "storage/backend.h"
#include "storage/disk.h"
#include "storage/fault.h"
#include "storage/log_store.h"

namespace oceanstore {

/** Which backend a node's durable state lives in. */
enum class StorageKind : std::uint8_t
{
    Memory, //!< RAM map; crash == amnesia (pre-storage behavior).
    Log,    //!< Append-only log over a DiskImage; crash-recoverable.
};

/** Universe-level storage configuration, one per node via seed mix. */
struct StorageSetup
{
    StorageKind kind = StorageKind::Memory;

    /** Fsync after every put (see LogStoreConfig). */
    bool syncEachPut = true;

    /** Disk faults; `faults.seed` is mixed with the node id so every
     *  node tears/corrupts independently but deterministically. */
    DiskFaultPlan faults;
};

/**
 * One node's storage: image + injector (durable across crashes) and
 * the currently running backend (destroyed on crash).
 */
class NodeStorage
{
  public:
    explicit NodeStorage(StorageSetup setup);

    /** The running backend.  Fatal to call while crashed. */
    StorageBackend &backend();

    /** True between construction/restart() and crash(). */
    bool running() const { return backend_ != nullptr; }

    /**
     * Node death: the injector applies the plan's crash faults to the
     * image (torn tail, bit flips), then the backend — index included
     * — is destroyed.  Memory-kind storage simply loses everything.
     */
    DiskFaultInjector::CrashReport crash();

    /**
     * Node rebirth: rebuild the backend.  For the log kind this
     * replays the (possibly torn/corrupted) image — construction IS
     * recovery — and the report is available via lastRecovery().
     */
    void restart();

    /** Replay report of the most recent restart (log kind; empty for
     *  memory kind). */
    const RecoveryReport &lastRecovery() const { return lastRecovery_; }

    DiskFaultInjector &faults() { return faults_; }
    DiskImage &disk() { return disk_; }
    StorageKind kind() const { return setup_.kind; }

  private:
    void build();

    StorageSetup setup_;
    DiskImage disk_;
    DiskFaultInjector faults_;
    std::unique_ptr<StorageBackend> backend_;
    RecoveryReport lastRecovery_;
};

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_NODE_STORAGE_H
