/**
 * @file
 * Append-only log store with crash-consistent recovery (DESIGN.md
 * section 14).
 *
 * Every mutation is one CRC32-framed record appended to the node's
 * DiskImage:
 *
 *     [u32 crc] [u8 type] [u32 keyLen] [u32 valLen] [key] [value]
 *
 * with the checksum covering everything after itself.  The in-memory
 * index (key -> latest record) is *derived* state, rebuilt by replay:
 * constructing a LogStore over an existing image IS recovery.  The
 * replay discipline, per the stable-storage exemplar (PAPERS.md,
 * cs/0004010) and the EOS in-memory->KV evolution:
 *
 *  - a structurally incomplete tail frame (header cut short, or
 *    declared lengths running past the image) is a *torn write*: the
 *    tail is physically truncated and the loss counted — losing
 *    un-fsynced suffix bytes is the crash contract, not an error;
 *  - a structurally sane frame whose checksum fails is *corruption*:
 *    rejected loudly (logged + `recovery.crc_rejects`), then replay
 *    continues at the declared frame end.  If the corruption hit a
 *    length field the resynchronization point is wrong and the
 *    remainder degenerates into further rejects or a torn-tail
 *    truncation — deterministically, never silently;
 *  - recovery is idempotent: replaying the same image twice yields
 *    byte-identical indexes (the 16-seed sweep in tests/test_storage
 *    holds this across adversarial crash plans).
 *
 * Reads re-verify the record checksum on every get()/scan() hit, so
 * post-recovery media rot (DiskFaultInjector::decay) is detected at
 * serve time: the value is withheld, `storage.crc_errors` counts it,
 * and the caller sees a miss it must repair through its own
 * redundancy (for fragments: the Merkle-audited archival repair).
 */

#ifndef OCEANSTORE_STORAGE_LOG_STORE_H
#define OCEANSTORE_STORAGE_LOG_STORE_H

#include <cstdint>
#include <map>
#include <string>

#include "storage/backend.h"
#include "storage/disk.h"
#include "storage/fault.h"

namespace oceanstore {

/** CRC32 (IEEE, reflected) over a byte range — the record checksum. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t n);

/** What one recovery replay observed and did. */
struct RecoveryReport
{
    std::uint64_t recordsReplayed = 0; //!< Frames accepted and applied.
    std::uint64_t bytesReplayed = 0;   //!< Image bytes scanned.
    std::uint64_t tornBytesTruncated = 0; //!< Tail bytes cut away.
    std::uint64_t crcRejects = 0;      //!< Sane frames, bad checksum.
    std::uint64_t liveKeys = 0;        //!< Index size after replay.
    double modeledLatency = 0.0;       //!< Slow-IO cost of the replay.
};

/** Tunables for one LogStore instance. */
struct LogStoreConfig
{
    /** Fsync after every put/erase (crash loses nothing but the op in
     *  flight).  When false the owner batches via sync(). */
    bool syncEachPut = true;
};

/**
 * The append-only backend.  Constructing over a non-empty image
 * replays it (recovery); the report is kept for the owner to assert
 * against and to feed the `recovery.*` metrics and the profiler's
 * "storage.recover" phase.
 */
class LogStore final : public StorageBackend
{
  public:
    /**
     * @param disk    the persistent image (owned by NodeStorage; must
     *                outlive this store)
     * @param faults  optional fault injector for slow-IO accounting
     *                (crash faults are applied by NodeStorage, not
     *                here); may be nullptr
     */
    LogStore(DiskImage &disk, DiskFaultInjector *faults,
             LogStoreConfig cfg = {});

    StorageStatus put(const std::string &key,
                      const Bytes &value) override;
    std::optional<Bytes> get(const std::string &key) override;
    bool erase(const std::string &key) override;
    void scan(const std::string &prefix,
              const std::function<void(const std::string &,
                                       const Bytes &)> &fn) override;
    void sync() override;
    const StorageStats &stats() const override { return stats_; }
    std::size_t keyCount() const override { return index_.size(); }

    /** The replay report from construction-time recovery. */
    const RecoveryReport &recovery() const { return recovery_; }

    /** Log bytes on disk (live + superseded + tombstones). */
    std::uint64_t logBytes() const { return disk_.size(); }

  private:
    /** Index entry: where the latest record for a key lives. */
    struct Slot
    {
        std::uint64_t recordOffset = 0;
        std::uint32_t recordLen = 0; //!< Full frame length.
        std::uint32_t valueLen = 0;
    };

    /** Frame a record into @p out.  @return frame length. */
    static std::uint32_t frameRecord(Bytes &out, std::uint8_t type,
                                     const std::string &key,
                                     const Bytes &value);

    /** Append a framed record; handles ENOSPC and latency. */
    StorageStatus appendRecord(std::uint8_t type, const std::string &key,
                               const Bytes &value);

    /** Re-read and checksum-verify the record of @p slot; on success
     *  the value bytes are copied into @p value_out. */
    bool readVerified(const std::string &key, const Slot &slot,
                      Bytes *value_out);

    /** Construction-time replay. */
    void recover();

    DiskImage &disk_;
    DiskFaultInjector *faults_;
    LogStoreConfig cfg_;
    std::map<std::string, Slot> index_;
    StorageStats stats_;
    RecoveryReport recovery_;
};

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_LOG_STORE_H
