/**
 * @file
 * Interned `storage.*` / `recovery.*` metric ids shared by the
 * storage backends (registered once, on first use — the same idiom
 * as every other module's MetricIds struct).
 */

#ifndef OCEANSTORE_STORAGE_COUNTERS_H
#define OCEANSTORE_STORAGE_COUNTERS_H

#include "obs/metrics.h"

namespace oceanstore {

struct StorageMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id puts, gets, erases, syncs, bytesWritten,
        bytesRead, enospc, crcErrors, recoveryReplays, recoveryRecords,
        recoveryTorn, recoveryCrcRejects;

    StorageMetricIds();
};

/** The process-wide interned ids. */
StorageMetricIds &storageMetrics();

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_COUNTERS_H
