/**
 * @file
 * The simulated persistent medium (DESIGN.md section 14).
 *
 * A DiskImage is the byte array that *survives* a node crash: the
 * LogStore built over it is part of the "process" (its index dies
 * with the node), while the image itself belongs to the NodeStorage
 * handle and persists across the crash/restart lifecycle.  The fsync
 * point divides the image into a durable prefix and a volatile tail:
 * on crash the DiskFaultInjector may tear the tail anywhere at or
 * after the sync point — mid-record included — and flip bits in what
 * survives, so recovery is adversarial, never clean.
 */

#ifndef OCEANSTORE_STORAGE_DISK_H
#define OCEANSTORE_STORAGE_DISK_H

#include <cstdint>

#include "util/bytes.h"

namespace oceanstore {

/** One node's persistent disk image. */
struct DiskImage
{
    /** The bytes "on disk", in append order. */
    Bytes bytes;

    /**
     * Fsync point: everything below this offset is crash-durable.
     * Bytes at or above it are the volatile tail a crash may tear.
     */
    std::uint64_t synced = 0;

    /** Capacity in bytes; 0 = unbounded.  Appends that would grow the
     *  image past this fail with StorageStatus::NoSpace. */
    std::uint64_t capacity = 0;

    /** Current size. */
    std::uint64_t size() const { return bytes.size(); }

    /** Unsynced (crash-vulnerable) suffix length. */
    std::uint64_t
    unsyncedBytes() const
    {
        return bytes.size() - synced;
    }

    /** True when appending @p n more bytes would exceed capacity. */
    bool
    wouldOverflow(std::uint64_t n) const
    {
        return capacity != 0 && bytes.size() + n > capacity;
    }
};

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_DISK_H
