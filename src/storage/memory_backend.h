/**
 * @file
 * The in-memory storage backend: the historical pre-durability
 * behavior, preserved behind the StorageBackend interface.  A crash
 * loses everything (NodeStorage simply discards the map) — which is
 * exactly what every scenario written before the storage tier
 * assumed, so it stays the default Universe configuration.
 */

#ifndef OCEANSTORE_STORAGE_MEMORY_BACKEND_H
#define OCEANSTORE_STORAGE_MEMORY_BACKEND_H

#include <map>
#include <string>

#include "storage/backend.h"

namespace oceanstore {

class MemoryBackend final : public StorageBackend
{
  public:
    MemoryBackend() = default;

    StorageStatus put(const std::string &key,
                      const Bytes &value) override;
    std::optional<Bytes> get(const std::string &key) override;
    bool erase(const std::string &key) override;
    void scan(const std::string &prefix,
              const std::function<void(const std::string &,
                                       const Bytes &)> &fn) override;
    void sync() override;
    const StorageStats &stats() const override { return stats_; }
    std::size_t keyCount() const override { return map_.size(); }

  private:
    std::map<std::string, Bytes> map_;
    StorageStats stats_;
};

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_MEMORY_BACKEND_H
