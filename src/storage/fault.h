/**
 * @file
 * Seeded disk-fault injection (DESIGN.md section 14).
 *
 * The storage-tier mirror of the network FaultInjector (sim/fault.h):
 * a declarative DiskFaultPlan drives every fault decision from one
 * seeded rng, so a crash-restart scenario replays bit-for-bit per
 * seed.  Faults modeled:
 *
 *  - torn write on crash: the unsynced tail of the disk image is cut
 *    at a seeded offset — usually mid-record — before recovery runs;
 *  - bit flips: seeded per-byte corruption of the surviving unsynced
 *    tail on crash, plus an explicit decay() hook for media rot
 *    anywhere in the image;
 *  - ENOSPC: a byte capacity on the image; appends beyond it fail
 *    with StorageStatus::NoSpace while reads keep serving;
 *  - slow IO: per-operation and per-byte modeled latency, *accounted*
 *    to the backend's stats (and the phase profiler) rather than
 *    scheduled, keeping the backend synchronous and deterministic.
 */

#ifndef OCEANSTORE_STORAGE_FAULT_H
#define OCEANSTORE_STORAGE_FAULT_H

#include <cstdint>

#include "storage/disk.h"
#include "util/random.h"

namespace oceanstore {

/** Declarative description of the disk faults to inject. */
struct DiskFaultPlan
{
    /**
     * Probability that a crash tears the unsynced tail (cut at a
     * seeded uniform offset in [synced, size]).  With probability
     * 1 - tornWriteOnCrash the whole tail survives the crash.
     */
    double tornWriteOnCrash = 0.0;

    /** Per-byte bit-flip probability applied to the unsynced bytes
     *  that survive a crash (each flips one seeded bit). */
    double bitFlipOnCrash = 0.0;

    /** Per-byte bit-flip probability for an explicit decay() pass
     *  over the whole image (media rot, independent of crashes). */
    double decayBitFlip = 0.0;

    /** Image capacity in bytes; 0 = unbounded (see DiskImage). */
    std::uint64_t capacityBytes = 0;

    /** Modeled latency per IO operation, sim seconds. */
    double opLatency = 0.0;

    /** Modeled latency per byte moved, sim seconds. */
    double perByteLatency = 0.0;

    /** Seed for every tear/flip decision. */
    std::uint64_t seed = 0xd15cf417u;

    /** True when a crash can damage the image at all. */
    bool
    anyCrashFaults() const
    {
        return tornWriteOnCrash > 0 || bitFlipOnCrash > 0;
    }
};

/**
 * Applies a DiskFaultPlan to one node's DiskImage.  Construct with
 * the plan (seed mixed per node by the owner), then let NodeStorage
 * call crash() at node death and the backend charge IO latency
 * through ioLatency().
 */
class DiskFaultInjector
{
  public:
    explicit DiskFaultInjector(DiskFaultPlan plan);

    /** What one crash did to the image. */
    struct CrashReport
    {
        std::uint64_t tornBytes = 0;  //!< Unsynced bytes cut away.
        std::uint64_t bitFlips = 0;   //!< Bytes corrupted in the tail.
    };

    /**
     * Apply the plan's crash faults to @p disk: cut the unsynced tail
     * at a seeded offset, flip seeded bits in the surviving unsynced
     * bytes.  The synced prefix is never touched — that is the fsync
     * contract recovery gets to rely on.
     */
    CrashReport crash(DiskImage &disk);

    /** Media-rot pass: flip bits anywhere with plan.decayBitFlip
     *  per-byte probability.  @return bytes corrupted. */
    std::uint64_t decay(DiskImage &disk);

    /** Modeled latency of one IO op moving @p bytes. */
    double
    ioLatency(std::uint64_t bytes) const
    {
        return plan_.opLatency +
               plan_.perByteLatency * static_cast<double>(bytes);
    }

    /** Lifetime totals across crashes/decay passes. */
    std::uint64_t totalTornBytes() const { return tornBytes_; }
    std::uint64_t totalBitFlips() const { return bitFlips_; }
    std::uint64_t crashes() const { return crashes_; }

    const DiskFaultPlan &plan() const { return plan_; }

  private:
    DiskFaultPlan plan_;
    Rng rng_;
    std::uint64_t tornBytes_ = 0;
    std::uint64_t bitFlips_ = 0;
    std::uint64_t crashes_ = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_FAULT_H
