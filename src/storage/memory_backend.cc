#include "storage/memory_backend.h"

#include "storage/counters.h"

namespace oceanstore {

StorageStatus
MemoryBackend::put(const std::string &key, const Bytes &value)
{
    StorageMetricIds &sm = storageMetrics();
    stats_.puts++;
    sm.reg->inc(sm.puts);
    stats_.bytesWritten += value.size();
    sm.reg->inc(sm.bytesWritten, value.size());
    map_[key] = value;
    return StorageStatus::Ok;
}

std::optional<Bytes>
MemoryBackend::get(const std::string &key)
{
    StorageMetricIds &sm = storageMetrics();
    stats_.gets++;
    sm.reg->inc(sm.gets);
    auto it = map_.find(key);
    if (it == map_.end())
        return std::nullopt;
    stats_.bytesRead += it->second.size();
    sm.reg->inc(sm.bytesRead, it->second.size());
    return it->second;
}

bool
MemoryBackend::erase(const std::string &key)
{
    if (map_.erase(key) == 0)
        return false;
    StorageMetricIds &sm = storageMetrics();
    stats_.erases++;
    sm.reg->inc(sm.erases);
    return true;
}

void
MemoryBackend::scan(const std::string &prefix,
                    const std::function<void(const std::string &,
                                             const Bytes &)> &fn)
{
    for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        fn(it->first, it->second);
    }
}

void
MemoryBackend::sync()
{
    // RAM has no fsync point; counted for interface symmetry.
    StorageMetricIds &sm = storageMetrics();
    stats_.syncs++;
    sm.reg->inc(sm.syncs);
}

} // namespace oceanstore
