#include "storage/node_storage.h"

#include "storage/memory_backend.h"
#include "util/check.h"

namespace oceanstore {

NodeStorage::NodeStorage(StorageSetup setup)
    : setup_(setup), faults_(setup.faults)
{
    disk_.capacity = setup_.faults.capacityBytes;
    build();
}

StorageBackend &
NodeStorage::backend()
{
    OS_CHECK(backend_ != nullptr,
             "storage access on a crashed node: the caller skipped "
             "the restart lifecycle");
    return *backend_;
}

DiskFaultInjector::CrashReport
NodeStorage::crash()
{
    DiskFaultInjector::CrashReport report;
    if (setup_.kind == StorageKind::Log) {
        report = faults_.crash(disk_);
    } else {
        // Memory kind: the "disk" is the map itself; a crash loses it
        // all, which destroying the backend below accomplishes.
        disk_.bytes.clear();
        disk_.synced = 0;
    }
    backend_.reset();
    lastRecovery_ = RecoveryReport{};
    return report;
}

void
NodeStorage::restart()
{
    OS_CHECK(backend_ == nullptr,
             "restart of a storage handle that never crashed");
    build();
}

void
NodeStorage::build()
{
    if (setup_.kind == StorageKind::Log) {
        auto store = std::make_unique<LogStore>(
            disk_, &faults_, LogStoreConfig{setup_.syncEachPut});
        lastRecovery_ = store->recovery();
        backend_ = std::move(store);
    } else {
        lastRecovery_ = RecoveryReport{};
        backend_ = std::make_unique<MemoryBackend>();
    }
}

} // namespace oceanstore
