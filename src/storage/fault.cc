#include "storage/fault.h"

#include "obs/metrics.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct DiskFaultMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id crashes, tornBytes, bitFlips;

    DiskFaultMetricIds()
        : reg(&MetricsRegistry::global()),
          crashes(reg->counter("storage.crashes")),
          tornBytes(reg->counter("storage.fault_torn_bytes")),
          bitFlips(reg->counter("storage.fault_bitflips"))
    {
    }
};

DiskFaultMetricIds &
diskFaultMetrics()
{
    static DiskFaultMetricIds ids;
    return ids;
}

} // namespace

DiskFaultInjector::DiskFaultInjector(DiskFaultPlan plan)
    : plan_(plan), rng_(plan.seed)
{
}

DiskFaultInjector::CrashReport
DiskFaultInjector::crash(DiskImage &disk)
{
    CrashReport rep;
    crashes_++;
    DiskFaultMetricIds &dm = diskFaultMetrics();
    dm.reg->inc(dm.crashes);

    std::uint64_t tail = disk.unsyncedBytes();
    if (tail > 0 && plan_.tornWriteOnCrash > 0 &&
        rng_.chance(plan_.tornWriteOnCrash)) {
        // Cut anywhere in [synced, size]: tearing respects no record
        // boundary — that is exactly what recovery must survive.
        std::uint64_t keep = rng_.below(tail + 1);
        rep.tornBytes = tail - keep;
        disk.bytes.resize(disk.synced + keep);
    }
    if (plan_.bitFlipOnCrash > 0) {
        for (std::uint64_t i = disk.synced; i < disk.size(); i++) {
            if (!rng_.chance(plan_.bitFlipOnCrash))
                continue;
            disk.bytes[i] ^=
                static_cast<std::uint8_t>(1u << rng_.below(8));
            rep.bitFlips++;
        }
    }
    tornBytes_ += rep.tornBytes;
    bitFlips_ += rep.bitFlips;
    dm.reg->inc(dm.tornBytes, rep.tornBytes);
    dm.reg->inc(dm.bitFlips, rep.bitFlips);
    return rep;
}

std::uint64_t
DiskFaultInjector::decay(DiskImage &disk)
{
    if (plan_.decayBitFlip <= 0)
        return 0;
    std::uint64_t flips = 0;
    for (auto &b : disk.bytes) {
        if (!rng_.chance(plan_.decayBitFlip))
            continue;
        b ^= static_cast<std::uint8_t>(1u << rng_.below(8));
        flips++;
    }
    bitFlips_ += flips;
    DiskFaultMetricIds &dm = diskFaultMetrics();
    dm.reg->inc(dm.bitFlips, flips);
    return flips;
}

} // namespace oceanstore
