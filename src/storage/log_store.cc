#include "storage/log_store.h"

#include <array>
#include <cstring>

#include "obs/profiler.h"
#include "storage/counters.h"
#include "util/logging.h"

namespace oceanstore {

StorageMetricIds::StorageMetricIds()
    : reg(&MetricsRegistry::global()),
      puts(reg->counter("storage.puts")),
      gets(reg->counter("storage.gets")),
      erases(reg->counter("storage.erases")),
      syncs(reg->counter("storage.syncs")),
      bytesWritten(reg->counter("storage.bytes_written")),
      bytesRead(reg->counter("storage.bytes_read")),
      enospc(reg->counter("storage.enospc")),
      crcErrors(reg->counter("storage.crc_errors")),
      recoveryReplays(reg->counter("recovery.replays")),
      recoveryRecords(reg->counter("recovery.records")),
      recoveryTorn(reg->counter("recovery.torn_truncations")),
      recoveryCrcRejects(reg->counter("recovery.crc_rejects"))
{
}

StorageMetricIds &
storageMetrics()
{
    static StorageMetricIds ids;
    return ids;
}

namespace {

/** Record types. */
constexpr std::uint8_t kPut = 1;
constexpr std::uint8_t kErase = 2;

/** Frame header: crc(4) + type(1) + keyLen(4) + valLen(4). */
constexpr std::uint64_t kHeaderBytes = 13;

std::uint32_t
loadU32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

void
storeU32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t n)
{
    static const auto table = []() {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; i++) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < n; i++)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

LogStore::LogStore(DiskImage &disk, DiskFaultInjector *faults,
                   LogStoreConfig cfg)
    : disk_(disk), faults_(faults), cfg_(cfg)
{
    recover();
}

std::uint32_t
LogStore::frameRecord(Bytes &out, std::uint8_t type,
                      const std::string &key, const Bytes &value)
{
    std::uint64_t frame = kHeaderBytes + key.size() + value.size();
    out.resize(frame);
    out[4] = type;
    storeU32(&out[5], static_cast<std::uint32_t>(key.size()));
    storeU32(&out[9], static_cast<std::uint32_t>(value.size()));
    std::memcpy(out.data() + kHeaderBytes, key.data(), key.size());
    if (!value.empty()) {
        std::memcpy(out.data() + kHeaderBytes + key.size(),
                    value.data(), value.size());
    }
    storeU32(&out[0], crc32(out.data() + 4, frame - 4));
    return static_cast<std::uint32_t>(frame);
}

StorageStatus
LogStore::appendRecord(std::uint8_t type, const std::string &key,
                       const Bytes &value)
{
    Bytes frame;
    std::uint32_t len = frameRecord(frame, type, key, value);
    StorageMetricIds &sm = storageMetrics();
    if (disk_.wouldOverflow(len)) {
        // Disk full degrades, never aborts: the write is refused with
        // a counted error while every read keeps serving.
        stats_.enospcErrors++;
        sm.reg->inc(sm.enospc);
        return StorageStatus::NoSpace;
    }

    std::uint64_t offset = disk_.size();
    disk_.bytes.insert(disk_.bytes.end(), frame.begin(), frame.end());
    if (type == kPut) {
        index_[key] = Slot{offset, len,
                           static_cast<std::uint32_t>(value.size())};
    } else {
        index_.erase(key);
    }

    stats_.bytesWritten += len;
    sm.reg->inc(sm.bytesWritten, len);
    if (faults_)
        stats_.modeledLatency += faults_->ioLatency(len);
    if (cfg_.syncEachPut)
        sync();
    return StorageStatus::Ok;
}

StorageStatus
LogStore::put(const std::string &key, const Bytes &value)
{
    StorageMetricIds &sm = storageMetrics();
    stats_.puts++;
    sm.reg->inc(sm.puts);
    return appendRecord(kPut, key, value);
}

bool
LogStore::erase(const std::string &key)
{
    if (!index_.count(key))
        return false;
    StorageMetricIds &sm = storageMetrics();
    stats_.erases++;
    sm.reg->inc(sm.erases);
    // A full disk cannot take the tombstone: the key stays live (the
    // caller sees false) rather than half-dying in RAM only.
    return appendRecord(kErase, key, {}) == StorageStatus::Ok;
}

bool
LogStore::readVerified(const std::string &key, const Slot &slot,
                       Bytes *value_out)
{
    const std::uint8_t *rec = disk_.bytes.data() + slot.recordOffset;
    StorageMetricIds &sm = storageMetrics();
    stats_.bytesRead += slot.recordLen;
    sm.reg->inc(sm.bytesRead, slot.recordLen);
    if (faults_)
        stats_.modeledLatency += faults_->ioLatency(slot.recordLen);

    // Serve-time verification: media rot after recovery must never
    // hand corrupt bytes to a caller as if they were stored ones.
    if (loadU32(rec) != crc32(rec + 4, slot.recordLen - 4)) {
        stats_.crcErrors++;
        sm.reg->inc(sm.crcErrors);
        logError("storage: checksum mismatch serving key '", key,
                 "' (record at ", slot.recordOffset, ")");
        return false;
    }
    value_out->assign(rec + kHeaderBytes + key.size(),
                      rec + slot.recordLen);
    return true;
}

std::optional<Bytes>
LogStore::get(const std::string &key)
{
    StorageMetricIds &sm = storageMetrics();
    stats_.gets++;
    sm.reg->inc(sm.gets);
    auto it = index_.find(key);
    if (it == index_.end())
        return std::nullopt;
    Bytes value;
    if (!readVerified(key, it->second, &value))
        return std::nullopt;
    return value;
}

void
LogStore::scan(const std::string &prefix,
               const std::function<void(const std::string &,
                                        const Bytes &)> &fn)
{
    for (auto it = index_.lower_bound(prefix); it != index_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        Bytes value;
        if (readVerified(it->first, it->second, &value))
            fn(it->first, value);
    }
}

void
LogStore::sync()
{
    if (disk_.synced == disk_.size())
        return;
    StorageMetricIds &sm = storageMetrics();
    stats_.syncs++;
    sm.reg->inc(sm.syncs);
    disk_.synced = disk_.size();
}

void
LogStore::recover()
{
    StorageMetricIds &sm = storageMetrics();
    sm.reg->inc(sm.recoveryReplays);

    std::uint64_t pos = 0;
    const std::uint64_t size = disk_.size();
    while (pos < size) {
        // Structural sanity first: an incomplete header or lengths
        // running past the image mean the tail was torn mid-append.
        if (size - pos < kHeaderBytes)
            break;
        const std::uint8_t *rec = disk_.bytes.data() + pos;
        std::uint8_t type = rec[4];
        std::uint64_t key_len = loadU32(&rec[5]);
        std::uint64_t val_len = loadU32(&rec[9]);
        std::uint64_t frame = kHeaderBytes + key_len + val_len;
        bool sane = (type == kPut || type == kErase) &&
                    frame <= size - pos;
        if (!sane)
            break;

        if (loadU32(rec) != crc32(rec + 4, frame - 4)) {
            // Checksum-corrupt record: reject loudly, resynchronize at
            // the declared frame end (see the header-comment caveat on
            // corrupted length fields).
            recovery_.crcRejects++;
            sm.reg->inc(sm.recoveryCrcRejects);
            logError("storage: recovery rejected corrupt record at ",
                     pos, " (", frame, " bytes)");
            pos += frame;
            continue;
        }

        std::string key(reinterpret_cast<const char *>(rec) +
                            kHeaderBytes,
                        key_len);
        if (type == kPut) {
            index_[key] = Slot{pos, static_cast<std::uint32_t>(frame),
                               static_cast<std::uint32_t>(val_len)};
        } else {
            index_.erase(key);
        }
        recovery_.recordsReplayed++;
        sm.reg->inc(sm.recoveryRecords);
        pos += frame;
    }

    if (pos < size) {
        // Torn tail: physically truncate so future appends extend a
        // well-formed log, and the loss is visible in the report.
        recovery_.tornBytesTruncated = size - pos;
        sm.reg->inc(sm.recoveryTorn);
        disk_.bytes.resize(pos);
    }
    disk_.synced = disk_.size();
    recovery_.bytesReplayed = pos;
    recovery_.liveKeys = index_.size();
    if (faults_) {
        recovery_.modeledLatency = faults_->ioLatency(pos);
        stats_.modeledLatency += recovery_.modeledLatency;
    }
    stats_.bytesRead += pos;
    sm.reg->inc(sm.bytesRead, pos);

    // Recovery-phase profiling: the replay's modeled IO cost lands in
    // the active profiler's "storage.recover" phase, so a restart's
    // latency decomposition shows recovery next to the protocol
    // phases (Figure 5/6 discipline).
    if (PhaseProfiler *pp = PhaseProfiler::active()) {
        pp->onEventFired(pp->intern("storage.recover"),
                         recovery_.modeledLatency);
    }
}

} // namespace oceanstore
