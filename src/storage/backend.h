/**
 * @file
 * Pluggable per-node storage backend (DESIGN.md section 14).
 *
 * The paper's core promise is *persistence*: "data ... may be cached
 * anywhere, anytime" yet survives server failure via deep archival
 * (Sections 1, 4.5).  Every durable state owner in the tree — archival
 * fragment stores, the primary tier's committed update log, Plaxton
 * location pointers — writes through a StorageBackend so a node crash
 * is a *restart*, not amnesia.  Two implementations:
 *
 *  - MemoryBackend: the historical in-RAM map; crash == total loss
 *    (the pre-storage-tier behavior, kept as the default so existing
 *    scenarios replay bit-for-bit);
 *  - LogStore: an append-only log of CRC32-framed records over a
 *    simulated disk image with an in-memory index rebuilt by replay,
 *    fsync-point tracking and crash-consistent recovery (torn tails
 *    truncated, checksum-corrupt records rejected loudly).
 *
 * The narrow put/get/scan/sync/stats surface follows the multicomputer
 * object store's stable-storage split (PAPERS.md, cs/0004010): the
 * object layers above never see framing, only keyed byte values.
 */

#ifndef OCEANSTORE_STORAGE_BACKEND_H
#define OCEANSTORE_STORAGE_BACKEND_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/bytes.h"

namespace oceanstore {

/** Outcome of a mutating storage operation. */
enum class StorageStatus
{
    Ok,
    NoSpace,  //!< Disk full: the write was rejected, reads still serve.
    IoError,  //!< Backend cannot accept writes (e.g. crashed handle).
};

/** Lifetime operation counters for one backend instance. */
struct StorageStats
{
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t erases = 0;
    std::uint64_t syncs = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t enospcErrors = 0; //!< Appends rejected by disk-full.
    std::uint64_t crcErrors = 0;    //!< Reads failing frame checksum.
    /** Modeled IO latency accrued (slow-IO fault plan), sim seconds. */
    double modeledLatency = 0.0;
};

/**
 * The stable-storage interface.  Keys are flat strings namespaced by
 * convention ("frag/<guid>/<idx>", "ulog/<seq>", "ptr/<guid>/<node>");
 * values are opaque byte blobs.  Implementations are synchronous and
 * deterministic — any modeled latency is *accounted* (stats, fault
 * injector) rather than scheduled, so callers on the sim's event loop
 * decide what to charge where.
 */
class StorageBackend
{
  public:
    virtual ~StorageBackend() = default;

    /** Store @p value under @p key (overwrites). */
    virtual StorageStatus put(const std::string &key,
                              const Bytes &value) = 0;

    /** Fetch the current value of @p key (nullopt when absent or the
     *  stored frame fails its checksum — counted, never served). */
    virtual std::optional<Bytes> get(const std::string &key) = 0;

    /** Remove @p key.  @return true when it existed. */
    virtual bool erase(const std::string &key) = 0;

    /**
     * Visit every live key with the given prefix in lexicographic
     * order (deterministic: recovery and tests depend on the order).
     * Values failing their checksum are skipped and counted.
     */
    virtual void
    scan(const std::string &prefix,
         const std::function<void(const std::string &, const Bytes &)>
             &fn) = 0;

    /** Make everything written so far crash-durable (fsync point). */
    virtual void sync() = 0;

    /** Lifetime counters. */
    virtual const StorageStats &stats() const = 0;

    /** Number of live keys. */
    virtual std::size_t keyCount() const = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_STORAGE_BACKEND_H
