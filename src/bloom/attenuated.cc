#include "bloom/attenuated.h"

namespace oceanstore {

AttenuatedBloomFilter::AttenuatedBloomFilter(unsigned depth,
                                             std::size_t bits,
                                             unsigned num_hashes)
{
    levels_.reserve(depth);
    for (unsigned i = 0; i < depth; i++)
        levels_.emplace_back(bits, num_hashes);
}

unsigned
AttenuatedBloomFilter::minDistance(const Guid &g) const
{
    for (unsigned i = 0; i < levels_.size(); i++) {
        if (levels_[i].mayContain(g))
            return i + 1;
    }
    return 0;
}

void
AttenuatedBloomFilter::clear()
{
    for (auto &l : levels_)
        l.clear();
}

std::size_t
AttenuatedBloomFilter::wireSize() const
{
    std::size_t n = 0;
    for (const auto &l : levels_)
        n += l.wireSize();
    return n;
}

} // namespace oceanstore
