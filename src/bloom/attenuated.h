/**
 * @file
 * Attenuated Bloom filters (Section 4.3.2, Figure 2).
 *
 * "An attenuated Bloom filter of depth D can be viewed as an array of
 * D normal Bloom filters.  The first Bloom filter is a record of the
 * objects contained locally on the current node.  The ith Bloom filter
 * is the union of all of the Bloom filters for all of the nodes a
 * distance i through any path from the current node.  An attenuated
 * Bloom filter is stored for each directed edge in the network.  A
 * query is routed along the edge whose filter indicates the presence
 * of the object at the smallest distance."
 */

#ifndef OCEANSTORE_BLOOM_ATTENUATED_H
#define OCEANSTORE_BLOOM_ATTENUATED_H

#include <vector>

#include "bloom/bloom_filter.h"

namespace oceanstore {

/**
 * A depth-D array of Bloom filters attached to one directed overlay
 * edge n->b: level i (1-based distance) summarizes objects stored on
 * nodes reachable in exactly i hops along paths beginning with that
 * edge.
 */
class AttenuatedBloomFilter
{
  public:
    /**
     * @param depth      number of levels D (distances 1..D)
     * @param bits       width of each level filter
     * @param num_hashes probes per element
     */
    AttenuatedBloomFilter(unsigned depth, std::size_t bits,
                          unsigned num_hashes);

    /** Number of levels. */
    unsigned depth() const { return static_cast<unsigned>(levels_.size()); }

    /** Mutable level accessor; level 0 = distance 1. */
    BloomFilter &level(unsigned i) { return levels_.at(i); }

    /** Const level accessor. */
    const BloomFilter &level(unsigned i) const { return levels_.at(i); }

    /**
     * Smallest distance (1-based) at which @p g may be present, or 0
     * when no level matches.  This is the "potential function" the
     * hill-climbing query minimizes.
     */
    unsigned minDistance(const Guid &g) const;

    /** Clear every level. */
    void clear();

    /** Wire size in bytes (all levels), for gossip cost accounting. */
    std::size_t wireSize() const;

  private:
    std::vector<BloomFilter> levels_;
};

} // namespace oceanstore

#endif // OCEANSTORE_BLOOM_ATTENUATED_H
