/**
 * @file
 * Probabilistic data location (Section 4.3.2, Figure 2).
 *
 * The fast, fully distributed first tier of OceanStore's two-tier
 * location mechanism.  Each node records its local objects in a Bloom
 * filter and stores, for each outgoing overlay edge, an attenuated
 * Bloom filter summarizing objects reachable through that edge at
 * each distance.  Queries hill-climb: route along the edge whose
 * filter indicates the object at the smallest distance.  When no
 * filter matches (or a TTL expires chasing false positives), the
 * query falls back to the deterministic global algorithm
 * (src/plaxton).
 */

#ifndef OCEANSTORE_BLOOM_LOCATION_SERVICE_H
#define OCEANSTORE_BLOOM_LOCATION_SERVICE_H

#include <map>
#include <set>
#include <vector>

#include "bloom/attenuated.h"
#include "sim/topology.h"

namespace oceanstore {

/** Outcome of one probabilistic query. */
struct BloomQueryResult
{
    bool found = false;       //!< Object located within the TTL.
    NodeId location = invalidNode; //!< Node holding the object.
    unsigned hops = 0;        //!< Overlay hops traveled.
    std::vector<NodeId> path; //!< Nodes visited, starting at source.
    bool fellBack = false;    //!< Query must go to the global tier.
};

/** Tunables for the probabilistic tier. */
struct BloomLocationConfig
{
    unsigned depth = 3;        //!< Attenuation depth D.
    std::size_t bits = 2048;   //!< Width of each level filter.
    unsigned numHashes = 4;    //!< Probes per element.
    unsigned ttl = 12;         //!< Max hops before falling back.
};

/**
 * The probabilistic location tier over an overlay topology.
 *
 * Filters are maintained with the recursive "any path" semantics of
 * the paper: the level-i filter of edge n->b is the union of the
 * level-(i-1) filters of b's outgoing edges (excluding the immediate
 * reverse edge), with level 1 equal to b's local filter.  Filter
 * recomputation is modelled as neighbor gossip and its byte cost is
 * tracked.
 */
class BloomLocationService
{
  public:
    BloomLocationService(const Topology &topo,
                         BloomLocationConfig cfg = {});

    /**
     * Place an object replica on node @p n.
     *
     * When the filters are current, the new GUID is propagated
     * *incrementally*: a backward walk over (edge, depth) states sets
     * exactly the bits a full rebuild would, shipping per-edge deltas
     * instead of whole filters — the cheap steady-state maintenance
     * path.  (Removals still force a rebuild: Bloom bits cannot be
     * cleared.)
     */
    void addObject(NodeId n, const Guid &g);

    /**
     * Remove a replica.  Bloom filters cannot delete, so this clears
     * the authoritative set and forces a filter rebuild.
     */
    void removeObject(NodeId n, const Guid &g);

    /** True when node @p n really holds @p g (authoritative check). */
    bool hasObject(NodeId n, const Guid &g) const;

    /**
     * Route a query for @p g starting at @p from (Figure 2).  Uses
     * current filters; rebuilds them first if stale.
     */
    BloomQueryResult query(NodeId from, const Guid &g);

    /**
     * Apply a "reliability factor" (Section 4.3.2): add @p amount to
     * the apparent distance of everything advertised through the edge
     * from->to, routing around nodes that have abused the protocol.
     */
    void penalize(NodeId from, NodeId to, unsigned amount);

    /** Recompute every attenuated filter from the local sets. */
    void rebuildFilters();

    /** Cumulative gossip bytes spent maintaining filters. */
    std::uint64_t gossipBytes() const { return gossipBytes_; }

    /** Per-node per-edge filter storage in bytes (constant per node). */
    std::size_t storagePerNode(NodeId n) const;

    /** The attenuated filter on edge from->to (for tests). */
    const AttenuatedBloomFilter &edgeFilter(NodeId from, NodeId to) const;

  private:
    unsigned edgeIndex(NodeId from, NodeId to) const;

    /** Set @p g's bits in every (edge, depth) state reachable from
     *  the holder @p n, mirroring the rebuild recursion exactly. */
    void propagateInsert(NodeId n, const Guid &g);

    const Topology &topo_;
    BloomLocationConfig cfg_;
    bool dirty_ = true;
    std::uint64_t gossipBytes_ = 0;

    /** Authoritative local object sets (ordered for deterministic
     *  filter rebuilds). */
    std::vector<std::set<Guid>> localSets_;
    /** Local Bloom filters (level 0 of the node itself). */
    std::vector<BloomFilter> localFilters_;
    /** edgeFilters_[n][j] covers edge n -> adjacency[n][j]. */
    std::vector<std::vector<AttenuatedBloomFilter>> edgeFilters_;
    /** Reliability penalties, keyed like edgeFilters_. */
    std::vector<std::vector<unsigned>> penalties_;
};

} // namespace oceanstore

#endif // OCEANSTORE_BLOOM_LOCATION_SERVICE_H
