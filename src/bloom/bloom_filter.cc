#include "bloom/bloom_filter.h"

#include <bit>
#include <cmath>

#include "util/logging.h"

namespace oceanstore {

BloomFilter::BloomFilter(std::size_t bits, unsigned num_hashes)
    : bits_((bits + 63) / 64 * 64), numHashes_(num_hashes),
      words_(bits_ / 64, 0)
{
    if (bits == 0 || num_hashes == 0)
        fatal("BloomFilter: zero width or hash count");
}

std::size_t
BloomFilter::probe(const Guid &g, unsigned i) const
{
    // Double hashing: the GUID is already uniform, so its two 64-bit
    // halves serve as independent hash values.
    const auto &b = g.bytes();
    std::uint64_t h1 = 0, h2 = 0;
    for (int k = 0; k < 8; k++) {
        h1 = (h1 << 8) | b[k];
        h2 = (h2 << 8) | b[8 + k];
    }
    h2 |= 1; // ensure odd stride
    return static_cast<std::size_t>((h1 + i * h2) % bits_);
}

void
BloomFilter::insert(const Guid &g)
{
    for (unsigned i = 0; i < numHashes_; i++) {
        std::size_t p = probe(g, i);
        words_[p / 64] |= 1ull << (p % 64);
    }
}

bool
BloomFilter::mayContain(const Guid &g) const
{
    for (unsigned i = 0; i < numHashes_; i++) {
        std::size_t p = probe(g, i);
        if (!(words_[p / 64] & (1ull << (p % 64))))
            return false;
    }
    return true;
}

void
BloomFilter::merge(const BloomFilter &other)
{
    if (other.bits_ != bits_ || other.numHashes_ != numHashes_)
        fatal("BloomFilter::merge: geometry mismatch");
    for (std::size_t i = 0; i < words_.size(); i++)
        words_[i] |= other.words_[i];
}

void
BloomFilter::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
}

std::size_t
BloomFilter::popCount() const
{
    std::size_t n = 0;
    for (auto w : words_)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

double
BloomFilter::fillRatio() const
{
    return static_cast<double>(popCount()) / static_cast<double>(bits_);
}

double
BloomFilter::falsePositiveRate() const
{
    return std::pow(fillRatio(), static_cast<double>(numHashes_));
}

} // namespace oceanstore
