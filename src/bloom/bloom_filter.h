/**
 * @file
 * Bloom filters (Section 4.3.2, citing Bloom [7]).
 *
 * Compact probabilistic set membership.  GUIDs are hashed to k bit
 * positions via double hashing over the two independent 64-bit halves
 * of the (already uniform) GUID, so no extra hashing passes are
 * needed.
 */

#ifndef OCEANSTORE_BLOOM_BLOOM_FILTER_H
#define OCEANSTORE_BLOOM_BLOOM_FILTER_H

#include <cstdint>
#include <vector>

#include "crypto/guid.h"

namespace oceanstore {

/**
 * A fixed-width Bloom filter over GUIDs.
 *
 * Filters taking part in a union (merge) must share width and hash
 * count; this is asserted.
 */
class BloomFilter
{
  public:
    /**
     * @param bits       filter width in bits (rounded up to 64)
     * @param num_hashes number of probe positions per element
     */
    explicit BloomFilter(std::size_t bits = 1024, unsigned num_hashes = 4);

    /** Insert a GUID. */
    void insert(const Guid &g);

    /** Membership test; false positives possible, negatives exact. */
    bool mayContain(const Guid &g) const;

    /** Bitwise OR with another filter of identical geometry. */
    void merge(const BloomFilter &other);

    /** Clear all bits. */
    void clear();

    /** Number of set bits. */
    std::size_t popCount() const;

    /** Filter width in bits. */
    std::size_t bits() const { return bits_; }

    /** Number of hash probes. */
    unsigned numHashes() const { return numHashes_; }

    /** Fraction of bits set (load factor). */
    double fillRatio() const;

    /** Predicted false-positive rate at the current load. */
    double falsePositiveRate() const;

    /** Wire size in bytes when shipped between neighbors. */
    std::size_t wireSize() const { return bits_ / 8; }

    /** Exact equality of geometry and bits. */
    bool operator==(const BloomFilter &other) const = default;

  private:
    std::size_t probe(const Guid &g, unsigned i) const;

    std::size_t bits_;
    unsigned numHashes_;
    std::vector<std::uint64_t> words_;
};

} // namespace oceanstore

#endif // OCEANSTORE_BLOOM_BLOOM_FILTER_H
