#include "bloom/location_service.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/logging.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct BloomMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id queries, hits, fallbacks;
    MetricsRegistry::Id queryHops; //!< histogram

    BloomMetricIds()
        : reg(&MetricsRegistry::global()),
          queries(reg->counter("bloom.queries")),
          hits(reg->counter("bloom.hits")),
          fallbacks(reg->counter("bloom.fallbacks")),
          queryHops(reg->histogram("bloom.query_hops", 0.0, 16.0, 16))
    {
    }
};

BloomMetricIds &
bloomMetrics()
{
    static BloomMetricIds ids;
    return ids;
}

} // namespace

BloomLocationService::BloomLocationService(const Topology &topo,
                                           BloomLocationConfig cfg)
    : topo_(topo), cfg_(cfg)
{
    std::size_t n = topo.size();
    localSets_.resize(n);
    localFilters_.assign(n, BloomFilter(cfg.bits, cfg.numHashes));
    edgeFilters_.resize(n);
    penalties_.resize(n);
    for (NodeId i = 0; i < n; i++) {
        edgeFilters_[i].assign(
            topo.adjacency[i].size(),
            AttenuatedBloomFilter(cfg.depth, cfg.bits, cfg.numHashes));
        penalties_[i].assign(topo.adjacency[i].size(), 0);
    }
}

unsigned
BloomLocationService::edgeIndex(NodeId from, NodeId to) const
{
    const auto &adj = topo_.adjacency[from];
    auto it = std::lower_bound(adj.begin(), adj.end(), to);
    if (it == adj.end() || *it != to)
        fatal("BloomLocationService: no such edge");
    return static_cast<unsigned>(it - adj.begin());
}

void
BloomLocationService::addObject(NodeId n, const Guid &g)
{
    localSets_[n].insert(g);
    localFilters_[n].insert(g);
    if (dirty_) {
        return; // a full rebuild is pending anyway
    }
    propagateInsert(n, g);
}

void
BloomLocationService::propagateInsert(NodeId n, const Guid &g)
{
    // Mirror the rebuild recursion for a single GUID:
    //   A_an[level 0] gains g for every a adjacent to n;
    //   if A_bc[l-1] gained g, A_ab[l] gains g for a in adj(b), a != c.
    // Each (edge, level) state is visited once; every touched edge
    // ships a small delta to the edge's tail (gossip accounting).
    const std::size_t delta_bytes = cfg_.numHashes * 4 + 16;

    // visited[level] -> set of (tail, edge index) already handled.
    std::vector<std::set<std::pair<NodeId, unsigned>>> visited(
        cfg_.depth);
    // Frontier holds (tail a, head b) pairs whose filter at `level`
    // just gained g.
    std::vector<std::pair<NodeId, NodeId>> frontier;

    for (NodeId a : topo_.adjacency[n]) {
        unsigned j = edgeIndex(a, n);
        edgeFilters_[a][j].level(0).insert(g);
        gossipBytes_ += delta_bytes;
        visited[0].insert({a, j});
        frontier.emplace_back(a, n);
    }

    for (unsigned lvl = 1; lvl < cfg_.depth; lvl++) {
        std::vector<std::pair<NodeId, NodeId>> next;
        for (const auto &[b, c] : frontier) {
            // A_bc[lvl-1] gained g; feed every edge a->b with a != c.
            for (NodeId a : topo_.adjacency[b]) {
                if (a == c)
                    continue; // immediate reverse edge excluded
                unsigned j = edgeIndex(a, b);
                if (!visited[lvl].insert({a, j}).second)
                    continue;
                edgeFilters_[a][j].level(lvl).insert(g);
                gossipBytes_ += delta_bytes;
                next.emplace_back(a, b);
            }
        }
        frontier = std::move(next);
    }
}

void
BloomLocationService::removeObject(NodeId n, const Guid &g)
{
    localSets_[n].erase(g);
    // Bloom filters cannot delete bits; rebuild the local filter from
    // the authoritative set.
    localFilters_[n].clear();
    for (const auto &o : localSets_[n])
        localFilters_[n].insert(o);
    dirty_ = true;
}

bool
BloomLocationService::hasObject(NodeId n, const Guid &g) const
{
    return localSets_[n].count(g) > 0;
}

void
BloomLocationService::rebuildFilters()
{
    // Level-by-level propagation of the recursive definition:
    //   A_nb[1] = local(b)
    //   A_nb[i] = U_{c in adj(b), c != n} A_bc[i-1]
    // Each level costs one gossip round: every node ships the newly
    // computed level of each edge filter to the edge's tail.
    for (NodeId n = 0; n < topo_.size(); n++) {
        const auto &adj = topo_.adjacency[n];
        for (std::size_t j = 0; j < adj.size(); j++) {
            edgeFilters_[n][j].clear();
            edgeFilters_[n][j].level(0).merge(localFilters_[adj[j]]);
        }
    }
    for (unsigned lvl = 1; lvl < cfg_.depth; lvl++) {
        for (NodeId n = 0; n < topo_.size(); n++) {
            const auto &adj = topo_.adjacency[n];
            for (std::size_t j = 0; j < adj.size(); j++) {
                NodeId b = adj[j];
                const auto &badj = topo_.adjacency[b];
                for (std::size_t k = 0; k < badj.size(); k++) {
                    if (badj[k] == n)
                        continue; // skip the immediate reverse edge
                    edgeFilters_[n][j].level(lvl).merge(
                        edgeFilters_[b][k].level(lvl - 1));
                }
            }
        }
    }
    // Gossip accounting: each directed edge carries its full
    // attenuated filter once per rebuild.
    for (NodeId n = 0; n < topo_.size(); n++) {
        for (const auto &f : edgeFilters_[n])
            gossipBytes_ += f.wireSize();
    }
    dirty_ = false;
}

BloomQueryResult
BloomLocationService::query(NodeId from, const Guid &g)
{
    if (dirty_)
        rebuildFilters();

    BloomMetricIds &bm = bloomMetrics();
    bm.reg->inc(bm.queries);
    BloomQueryResult res;
    res.path.push_back(from);

    NodeId cur = from;
    std::unordered_set<NodeId> visited{from};

    for (;;) {
        if (hasObject(cur, g)) {
            res.found = true;
            res.location = cur;
            bm.reg->inc(bm.hits);
            bm.reg->observe(bm.queryHops,
                            static_cast<double>(res.hops));
            return res;
        }
        if (res.hops >= cfg_.ttl)
            break;

        // Pick the outgoing edge advertising g at the smallest
        // (penalty-adjusted) distance; deterministic tie-break on the
        // neighbor id.  Never revisit a node.
        const auto &adj = topo_.adjacency[cur];
        unsigned best_dist = ~0u;
        NodeId best = invalidNode;
        for (std::size_t j = 0; j < adj.size(); j++) {
            if (visited.count(adj[j]))
                continue;
            unsigned d = edgeFilters_[cur][j].minDistance(g);
            if (d == 0)
                continue;
            d += penalties_[cur][j];
            // Reliability factor (Section 4.3.2): a link downgraded
            // past the attenuation horizon advertises nothing
            // credible — treat it as matchless rather than chase a
            // hopeless hop, so heavy loss degrades the query to the
            // global-tier fallback instead of a wandering TTL burn.
            if (d > cfg_.depth)
                continue;
            if (d < best_dist || (d == best_dist && adj[j] < best)) {
                best_dist = d;
                best = adj[j];
            }
        }
        if (best == invalidNode)
            break;

        cur = best;
        visited.insert(cur);
        res.hops++;
        res.path.push_back(cur);
    }

    res.fellBack = true;
    bm.reg->inc(bm.fallbacks);
    return res;
}

void
BloomLocationService::penalize(NodeId from, NodeId to, unsigned amount)
{
    penalties_[from][edgeIndex(from, to)] += amount;
}

std::size_t
BloomLocationService::storagePerNode(NodeId n) const
{
    std::size_t bytes = localFilters_[n].wireSize();
    for (const auto &f : edgeFilters_[n])
        bytes += f.wireSize();
    return bytes;
}

const AttenuatedBloomFilter &
BloomLocationService::edgeFilter(NodeId from, NodeId to) const
{
    return edgeFilters_[from][edgeIndex(from, to)];
}

} // namespace oceanstore
