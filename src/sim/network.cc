#include "sim/network.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

Network::Network(Simulator &sim, NetworkConfig cfg)
    : sim_(sim), cfg_(cfg), rng_(cfg.seed)
{
}

NodeId
Network::addNode(SimNode *node, double x, double y)
{
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(node);
    pos_.emplace_back(x, y);
    up_.push_back(true);
    partition_.push_back(0);
    return id;
}

double
Network::distance(NodeId a, NodeId b) const
{
    OS_DCHECK(a < pos_.size() && b < pos_.size(),
              "Network::distance: bad node id");
    double dx = pos_[a].first - pos_[b].first;
    double dy = pos_[a].second - pos_[b].second;
    return std::sqrt(dx * dx + dy * dy);
}

double
Network::latency(NodeId a, NodeId b) const
{
    if (a == b)
        return 0.0;
    return cfg_.baseLatency + cfg_.latencyPerUnit * distance(a, b);
}

void
Network::send(NodeId from, NodeId to, Message msg)
{
    if (from >= nodes_.size() || to >= nodes_.size())
        fatal("Network::send: unknown node");

    msg.src = from;
    std::size_t bytes = msg.totalBytes();
    totalBytes_ += bytes;
    totalMessages_++;
    byType_.bump(msg.type, bytes);

    // A crashed sender cannot transmit.
    if (!up_[from])
        return;
    if (cfg_.dropRate > 0 && rng_.chance(cfg_.dropRate))
        return;

    double lat = latency(from, to);
    if (cfg_.jitter > 0)
        lat *= 1.0 + rng_.uniform(-cfg_.jitter, cfg_.jitter);
    if (cfg_.bandwidth > 0)
        lat += static_cast<double>(bytes) / cfg_.bandwidth;

    // Local delivery still takes a scheduling step to avoid unbounded
    // recursion in protocols that self-send.
    if (lat <= 0)
        lat = 1e-6;

    sim_.schedule(lat, [this, to, m = std::move(msg)]() {
        if (!up_[to])
            return;
        if (partition_[m.src] != partition_[to])
            return;
        nodes_[to]->handleMessage(m);
    });
}

void
Network::setDown(NodeId n)
{
    OS_CHECK(n < up_.size(), "Network::setDown: bad node id ", n);
    up_[n] = false;
}

void
Network::setUp(NodeId n)
{
    OS_CHECK(n < up_.size(), "Network::setUp: bad node id ", n);
    up_[n] = true;
}

void
Network::setPartition(NodeId n, int partition)
{
    OS_CHECK(n < partition_.size(),
             "Network::setPartition: bad node id ", n);
    partition_[n] = partition;
}

void
Network::healPartitions()
{
    for (auto &p : partition_)
        p = 0;
}

void
Network::resetCounters()
{
    totalBytes_ = 0;
    totalMessages_ = 0;
    byType_.clear();
}

} // namespace oceanstore
