#include "sim/network.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct NetMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id sends, bytes, drops, arrivalDrops, delivered,
        dup, inFlight;

    NetMetricIds()
        : reg(&MetricsRegistry::global()),
          sends(reg->counter("net.sends")),
          bytes(reg->counter("net.bytes")),
          drops(reg->counter("net.drops")),
          arrivalDrops(reg->counter("net.arrival_drops")),
          delivered(reg->counter("net.delivered")),
          dup(reg->counter("net.dup")),
          inFlight(reg->gauge("net.in_flight"))
    {
    }
};

NetMetricIds &
netMetrics()
{
    static NetMetricIds ids;
    return ids;
}

} // namespace

Network::Network(Simulator &sim, NetworkConfig cfg)
    : sim_(sim), cfg_(cfg), rng_(cfg.seed)
{
}

NodeId
Network::addNode(SimNode *node, double x, double y)
{
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(node);
    pos_.emplace_back(x, y);
    up_.push_back(true);
    partition_.push_back(0);
    return id;
}

void
Network::removeNode(NodeId id)
{
    if (id < nodes_.size())
        nodes_[id] = nullptr;
}

double
Network::distance(NodeId a, NodeId b) const
{
    OS_DCHECK(a < pos_.size() && b < pos_.size(),
              "Network::distance: bad node id");
    double dx = pos_[a].first - pos_[b].first;
    double dy = pos_[a].second - pos_[b].second;
    return std::sqrt(dx * dx + dy * dy);
}

double
Network::latency(NodeId a, NodeId b) const
{
    if (a == b)
        return 0.0;
    return cfg_.baseLatency + cfg_.latencyPerUnit * distance(a, b);
}

std::uint32_t
Network::allocFlight(Message &&msg)
{
    MutexLock lock(mu_);
    if (!freeFlights_.empty()) {
        std::uint32_t f = freeFlights_.back();
        freeFlights_.pop_back();
        flights_[f].msg = std::move(msg);
        return f;
    }
    flights_.push_back(Flight{std::move(msg), 0});
    return static_cast<std::uint32_t>(flights_.size() - 1);
}

void
Network::releaseFlight(std::uint32_t flight)
{
    MutexLock lock(mu_);
    Flight &fl = flights_[flight];
    OS_DCHECK(fl.refs > 0, "Network: flight over-released");
    if (--fl.refs == 0) {
        fl.msg = Message(); // drop the payload eagerly
        freeFlights_.push_back(flight);
    }
}

double
Network::deliveryLatency(NodeId from, NodeId to, std::size_t bytes)
{
    double lat = latency(from, to);
    if (cfg_.jitter > 0)
        lat *= 1.0 + rng_.uniform(-cfg_.jitter, cfg_.jitter);
    if (cfg_.bandwidth > 0)
        lat += static_cast<double>(bytes) / cfg_.bandwidth;

    // Local delivery still takes a scheduling step to avoid unbounded
    // recursion in protocols that self-send.
    if (lat <= 0)
        lat = 1e-6;
    return lat;
}

void
Network::pinFlight(std::uint32_t flight)
{
    MutexLock lock(mu_);
    flights_[flight].refs++;
}

const Message &
Network::flightMsg(std::uint32_t flight) const
{
    MutexLock lock(mu_);
    return flights_[flight].msg;
}

void
Network::scheduleDelivery(std::uint32_t flight, NodeId to, double lat)
{
    std::size_t nowInFlight;
    {
        MutexLock lock(mu_);
        flights_[flight].refs++;
        inFlight_++;
        nowInFlight = inFlight_;
    }
    {
        NetMetricIds &nm = netMetrics();
        nm.reg->set(nm.inFlight, static_cast<double>(nowInFlight));
    }
    // Label the delivery event with the message's component prefix
    // ("pbft.prepare" -> "pbft") so the profiler attributes the
    // event-loop phase breakdown per protocol layer.
    PhaseProfiler *pp = PhaseProfiler::active();
    ScopedPhase phase(
        pp, pp ? pp->labelForMessageType(flightMsg(flight).type) : 0);
    // Captures 12 bytes: stays in EventFn's inline buffer, so the
    // whole send costs no heap allocation.  Delivery events carry no
    // cancellation token by design: they *are* the simulated network,
    // and the Network outlives the drained event queue.
    // oslint-allow(lifetime): deliveries are owned by the run; the Network outlives them
    sim_.schedule(lat, [this, flight, to]() { deliver(flight, to); });
}

void
Network::deliver(std::uint32_t flight, NodeId to)
{
    std::size_t nowInFlight;
    {
        MutexLock lock(mu_);
        inFlight_--;
        nowInFlight = inFlight_;
    }
    NetMetricIds &nm = netMetrics();
    nm.reg->set(nm.inFlight, static_cast<double>(nowInFlight));
    const Message &m = flightMsg(flight);
    if (nodes_[to] != nullptr && up_[to] &&
        partition_[m.src] == partition_[to]) {
        nm.reg->inc(nm.delivered);
        // Make the message's span the ambient causal parent for
        // everything the handler does (nested sends, timers).
        Tracer *tr = Tracer::active();
        bool traced = tr && m.trace.valid();
        if (traced)
            tr->setCurrent(m.trace);
        // The handler may reentrantly send (allocating new flights);
        // flights_ is a deque so &m stays valid throughout.
        nodes_[to]->handleMessage(m);
        if (traced)
            tr->clearCurrent();
    } else {
        nm.reg->inc(nm.arrivalDrops);
    }
    releaseFlight(flight);
}

void
Network::send(NodeId from, NodeId to, Message msg)
{
    if (from >= nodes_.size() || to >= nodes_.size())
        fatal("Network::send: unknown node");

    msg.src = from;
    std::size_t bytes = msg.totalBytes();
    totalBytes_ += bytes;
    totalMessages_++;
    byType_.bump(msg.type, bytes);
    NetMetricIds &nm = netMetrics();
    nm.reg->inc(nm.sends);
    nm.reg->inc(nm.bytes, bytes);
    Tracer *tr = Tracer::active();

    // A crashed sender cannot transmit.  Dropped transmissions still
    // get a span (marked Dropped) so retry trees show every attempt.
    if (!up_[from]) {
        nm.reg->inc(nm.drops);
        if (tr)
            tr->messageSpan(msg.type, from, to,
                            static_cast<std::uint32_t>(bytes),
                            sim_.now(), sim_.now(), SpanKind::Send,
                            SpanStatus::Dropped);
        return;
    }
    if (cfg_.dropRate > 0 && rng_.chance(cfg_.dropRate)) {
        nm.reg->inc(nm.drops);
        if (tr)
            tr->messageSpan(msg.type, from, to,
                            static_cast<std::uint32_t>(bytes),
                            sim_.now(), sim_.now(), SpanKind::Send,
                            SpanStatus::Dropped);
        return;
    }

    double lat = deliveryLatency(from, to, bytes);
    bool dup = false;
    if (fault_) {
        auto v = fault_->onSend(from, to, bytes);
        if (v.drop) {
            nm.reg->inc(nm.drops);
            if (tr)
                tr->messageSpan(msg.type, from, to,
                                static_cast<std::uint32_t>(bytes),
                                sim_.now(), sim_.now(), SpanKind::Send,
                                SpanStatus::Dropped);
            return;
        }
        lat += v.extraDelay;
        dup = v.duplicate;
    }
    // The duplicate's latency is drawn *before* tracing so the rng
    // stream is identical whether or not a tracer is attached.
    double dupLat = 0.0;
    if (dup) {
        nm.reg->inc(nm.dup);
        dupLat = lat + deliveryLatency(from, to, bytes);
    }
    if (tr)
        msg.trace = tr->messageSpan(
            msg.type, from, to, static_cast<std::uint32_t>(bytes),
            sim_.now(), sim_.now() + (dup ? dupLat : lat),
            SpanKind::Send, SpanStatus::Ok);
    std::uint32_t flight = allocFlight(std::move(msg));
    if (dup) {
        // Pin the flight so both copies share one payload slot.
        pinFlight(flight);
        scheduleDelivery(flight, to, lat);
        scheduleDelivery(flight, to, dupLat);
        releaseFlight(flight);
        return;
    }
    scheduleDelivery(flight, to, lat);
}

void
Network::multicast(NodeId from, const std::vector<NodeId> &tos,
                   Message msg)
{
    if (from >= nodes_.size())
        fatal("Network::multicast: unknown sender");
    if (tos.empty())
        return;

    msg.src = from;
    std::size_t bytes = msg.totalBytes();
    // Every destination is one link crossing, exactly as if sent
    // individually.
    for (NodeId to : tos) {
        if (to >= nodes_.size())
            fatal("Network::multicast: unknown node");
        totalBytes_ += bytes;
        totalMessages_++;
    }
    byType_.bump(msg.type, bytes * tos.size());
    NetMetricIds &nm = netMetrics();
    nm.reg->inc(nm.sends, tos.size());
    nm.reg->inc(nm.bytes, bytes * tos.size());
    Tracer *tr = Tracer::active();

    if (!up_[from]) {
        nm.reg->inc(nm.drops, tos.size());
        if (tr)
            tr->messageSpan(msg.type, from,
                            static_cast<std::uint32_t>(tos.size()),
                            static_cast<std::uint32_t>(bytes),
                            sim_.now(), sim_.now(),
                            SpanKind::Multicast, SpanStatus::Dropped);
        return;
    }

    // One span covers the whole fan-out (peer = destination count);
    // its end time is extended to the latest scheduled delivery as
    // the legs below are drawn.
    std::uint32_t fanoutSpan = 0;
    if (tr) {
        msg.trace = tr->messageSpan(
            msg.type, from, static_cast<std::uint32_t>(tos.size()),
            static_cast<std::uint32_t>(bytes), sim_.now(), sim_.now(),
            SpanKind::Multicast, SpanStatus::Ok);
        fanoutSpan = msg.trace.spanId;
    }
    std::uint32_t flight = allocFlight(std::move(msg));
    // Pin the flight while scheduling so an immediate zero-ref free
    // cannot recycle it if every destination drops.
    pinFlight(flight);
    for (NodeId to : tos) {
        if (cfg_.dropRate > 0 && rng_.chance(cfg_.dropRate)) {
            nm.reg->inc(nm.drops);
            continue;
        }
        double lat = deliveryLatency(from, to, bytes);
        if (fault_) {
            auto v = fault_->onSend(from, to, bytes);
            if (v.drop) {
                nm.reg->inc(nm.drops);
                continue;
            }
            lat += v.extraDelay;
            if (v.duplicate) {
                nm.reg->inc(nm.dup);
                double dupLat = lat + deliveryLatency(from, to, bytes);
                if (tr)
                    tr->setSpanEnd(fanoutSpan, sim_.now() + dupLat);
                scheduleDelivery(flight, to, dupLat);
            }
        }
        if (tr)
            tr->setSpanEnd(fanoutSpan, sim_.now() + lat);
        scheduleDelivery(flight, to, lat);
    }
    releaseFlight(flight);
}

void
Network::setDown(NodeId n)
{
    OS_CHECK(n < up_.size(), "Network::setDown: bad node id ", n);
    up_[n] = false;
}

void
Network::setUp(NodeId n)
{
    OS_CHECK(n < up_.size(), "Network::setUp: bad node id ", n);
    up_[n] = true;
}

void
Network::setPartition(NodeId n, int partition)
{
    OS_CHECK(n < partition_.size(),
             "Network::setPartition: bad node id ", n);
    partition_[n] = partition;
}

void
Network::healPartitions()
{
    for (auto &p : partition_)
        p = 0;
}

void
Network::heal(int a, int b)
{
    if (a == b)
        return;
    for (auto &p : partition_) {
        if (p == b)
            p = a;
    }
}

void
Network::resetCounters()
{
    totalBytes_ = 0;
    totalMessages_ = 0;
    byType_.clear();
}

} // namespace oceanstore
