#include "sim/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace oceanstore {

void
Topology::addEdge(NodeId a, NodeId b)
{
    OS_CHECK(a < size() && b < size(),
             "Topology::addEdge: node out of range");
    if (a == b)
        return;
    auto insert_sorted = [](std::vector<NodeId> &v, NodeId x) {
        auto it = std::lower_bound(v.begin(), v.end(), x);
        if (it == v.end() || *it != x)
            v.insert(it, x);
    };
    insert_sorted(adjacency[a], b);
    insert_sorted(adjacency[b], a);
}

std::vector<int>
Topology::hopDistances(NodeId from) const
{
    OS_CHECK(from < size(), "Topology::hopDistances: bad source");
    std::vector<int> dist(size(), -1);
    std::queue<NodeId> q;
    dist[from] = 0;
    q.push(from);
    while (!q.empty()) {
        NodeId n = q.front();
        q.pop();
        for (NodeId m : adjacency[n]) {
            if (dist[m] < 0) {
                dist[m] = dist[n] + 1;
                q.push(m);
            }
        }
    }
    return dist;
}

bool
Topology::connected() const
{
    if (size() == 0)
        return true;
    auto dist = hopDistances(0);
    return std::all_of(dist.begin(), dist.end(),
                       [](int d) { return d >= 0; });
}

namespace {

double
sqDist(const std::pair<double, double> &a,
       const std::pair<double, double> &b)
{
    double dx = a.first - b.first;
    double dy = a.second - b.second;
    return dx * dx + dy * dy;
}

/** Add random edges between components until connected. */
void
ensureConnected(Topology &topo, Rng &rng)
{
    while (!topo.connected()) {
        auto dist = topo.hopDistances(0);
        std::vector<NodeId> reachable, unreachable;
        for (NodeId n = 0; n < topo.size(); n++) {
            (dist[n] >= 0 ? reachable : unreachable).push_back(n);
        }
        topo.addEdge(rng.pick(reachable), rng.pick(unreachable));
    }
}

} // namespace

Topology
makeGeometricTopology(std::size_t n, unsigned k, Rng &rng)
{
    Topology topo;
    topo.positions.resize(n);
    topo.adjacency.resize(n);
    for (auto &p : topo.positions)
        p = {rng.uniform(), rng.uniform()};

    for (NodeId a = 0; a < n; a++) {
        // Pick the k nearest other nodes by partial sort.
        std::vector<NodeId> order;
        order.reserve(n - 1);
        for (NodeId b = 0; b < n; b++) {
            if (b != a)
                order.push_back(b);
        }
        unsigned kk = std::min<std::size_t>(k, order.size());
        std::partial_sort(
            order.begin(), order.begin() + kk, order.end(),
            [&](NodeId x, NodeId y) {
                return sqDist(topo.positions[a], topo.positions[x]) <
                       sqDist(topo.positions[a], topo.positions[y]);
            });
        for (unsigned i = 0; i < kk; i++)
            topo.addEdge(a, order[i]);
    }
    ensureConnected(topo, rng);
    return topo;
}

Topology
makeTransitStubTopology(std::size_t transits,
                        std::size_t stubs_per_transit,
                        std::size_t nodes_per_stub, Rng &rng)
{
    Topology topo;
    std::size_t n =
        transits + transits * stubs_per_transit * nodes_per_stub;
    topo.positions.resize(n);
    topo.adjacency.resize(n);

    // Transit nodes: spread across the square, fully meshed.
    for (NodeId t = 0; t < transits; t++) {
        topo.positions[t] = {rng.uniform(), rng.uniform()};
        for (NodeId u = 0; u < t; u++)
            topo.addEdge(t, u);
    }

    NodeId next = static_cast<NodeId>(transits);
    for (NodeId t = 0; t < transits; t++) {
        for (std::size_t s = 0; s < stubs_per_transit; s++) {
            // Each stub domain is a tight cluster near its transit.
            double cx = topo.positions[t].first + rng.uniform(-0.08, 0.08);
            double cy = topo.positions[t].second + rng.uniform(-0.08, 0.08);
            NodeId first = next;
            for (std::size_t i = 0; i < nodes_per_stub; i++) {
                NodeId id = next++;
                topo.positions[id] = {
                    std::clamp(cx + rng.uniform(-0.02, 0.02), 0.0, 1.0),
                    std::clamp(cy + rng.uniform(-0.02, 0.02), 0.0, 1.0)};
                // Chain within the stub plus a link to the stub head.
                if (id != first)
                    topo.addEdge(id, id - 1);
            }
            // Stub head attaches to its transit node.
            topo.addEdge(first, t);
        }
    }
    ensureConnected(topo, rng);
    return topo;
}

Topology
makeSmallWorldTopology(std::size_t n, unsigned k, double beta, Rng &rng)
{
    Topology topo;
    topo.positions.resize(n);
    topo.adjacency.resize(n);
    constexpr double pi = 3.14159265358979323846;
    for (NodeId i = 0; i < n; i++) {
        double theta = 2.0 * pi * static_cast<double>(i) /
                       static_cast<double>(n);
        topo.positions[i] = {0.5 + 0.45 * std::cos(theta),
                             0.5 + 0.45 * std::sin(theta)};
    }
    for (NodeId i = 0; i < n; i++) {
        for (unsigned j = 1; j <= k; j++) {
            NodeId b = static_cast<NodeId>((i + j) % n);
            if (beta > 0 && rng.chance(beta)) {
                // Rewire to a random non-self node.
                NodeId r;
                do {
                    r = static_cast<NodeId>(rng.below(n));
                } while (r == i);
                topo.addEdge(i, r);
            } else {
                topo.addEdge(i, b);
            }
        }
    }
    ensureConnected(topo, rng);
    return topo;
}

std::vector<unsigned>
assignGridRegions(const Topology &topo, unsigned grid)
{
    OS_CHECK(grid > 0, "assignGridRegions: grid must be positive");
    std::vector<unsigned> regions;
    regions.reserve(topo.positions.size());
    for (const auto &[x, y] : topo.positions) {
        auto cell = [grid](double v) {
            auto c = static_cast<long>(v * grid);
            c = std::max(0l, std::min<long>(c, grid - 1));
            return static_cast<unsigned>(c);
        };
        regions.push_back(cell(x) + grid * cell(y));
    }
    return regions;
}

} // namespace oceanstore
