#include "sim/churn.h"

#include "util/check.h"

namespace oceanstore {

ChurnInjector::ChurnInjector(Simulator &sim, Network &net, ChurnConfig cfg)
    : sim_(sim), net_(net), cfg_(cfg), rng_(cfg.seed)
{
    OS_CHECK(cfg.meanUptime > 0 && cfg.meanDowntime > 0,
             "ChurnInjector: non-positive mean up/down time");
}

void
ChurnInjector::start(const std::vector<NodeId> &nodes)
{
    running_ = true;
    for (NodeId n : nodes)
        scheduleTransition(n);
}

void
ChurnInjector::scheduleTransition(NodeId n)
{
    double hold = net_.isUp(n) ? rng_.exponential(cfg_.meanUptime)
                               : rng_.exponential(cfg_.meanDowntime);
    transitions_[n] = sim_.schedule(hold, [this, n]() {
        if (!running_)
            return;
        if (net_.isUp(n)) {
            if (lifecycle)
                lifecycle->shutdown(n);
            else
                net_.setDown(n);
            if (onCrash)
                onCrash(n);
        } else {
            if (lifecycle)
                lifecycle->restart(n);
            else
                net_.setUp(n);
            if (onRecover)
                onRecover(n);
        }
        scheduleTransition(n);
    });
}

std::vector<NodeId>
ChurnInjector::massFailure(const std::vector<NodeId> &nodes,
                           double fraction)
{
    std::vector<NodeId> downed;
    if (lifecycle) {
        // Same sampling as the static helper, but each crash routes
        // through the lifecycle so storage teardown stays symmetric.
        OS_CHECK(fraction >= 0.0 && fraction <= 1.0,
                 "massFailure: fraction ", fraction, " outside [0,1]");
        std::size_t k = static_cast<std::size_t>(
            fraction * static_cast<double>(nodes.size()) + 0.5);
        auto picks = rng_.sampleIndices(nodes.size(), k);
        downed.reserve(k);
        for (auto i : picks) {
            lifecycle->shutdown(nodes[i]);
            downed.push_back(nodes[i]);
        }
    } else {
        downed = massFailure(net_, nodes, fraction, rng_);
    }
    if (onCrash) {
        for (NodeId n : downed)
            onCrash(n);
    }
    return downed;
}

std::vector<NodeId>
ChurnInjector::massRecover(const std::vector<NodeId> &nodes)
{
    std::vector<NodeId> recovered;
    for (NodeId n : nodes) {
        if (net_.isUp(n))
            continue;
        if (lifecycle)
            lifecycle->restart(n);
        else
            net_.setUp(n);
        recovered.push_back(n);
        if (onRecover)
            onRecover(n);
    }
    return recovered;
}

std::vector<NodeId>
ChurnInjector::massFailure(Network &net, const std::vector<NodeId> &nodes,
                           double fraction, Rng &rng)
{
    OS_CHECK(fraction >= 0.0 && fraction <= 1.0,
             "massFailure: fraction ", fraction, " outside [0,1]");
    std::size_t k = static_cast<std::size_t>(
        fraction * static_cast<double>(nodes.size()) + 0.5);
    auto picks = rng.sampleIndices(nodes.size(), k);
    std::vector<NodeId> downed;
    downed.reserve(k);
    for (auto i : picks) {
        net.setDown(nodes[i]);
        downed.push_back(nodes[i]);
    }
    return downed;
}

} // namespace oceanstore
