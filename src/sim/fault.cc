#include "sim/fault.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct FaultMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id inspected, dropped, duplicated, delayed;

    FaultMetricIds()
        : reg(&MetricsRegistry::global()),
          inspected(reg->counter("fault.inspected")),
          dropped(reg->counter("fault.drops")),
          duplicated(reg->counter("fault.dups")),
          delayed(reg->counter("fault.delays"))
    {
    }
};

FaultMetricIds &
faultMetrics()
{
    static FaultMetricIds ids;
    return ids;
}

} // namespace

FaultInjector::FaultInjector(Simulator &sim, Network &net, FaultPlan plan)
    : sim_(sim), net_(net), plan_(std::move(plan)), rng_(plan_.seed)
{
    OS_CHECK(plan_.drop >= 0 && plan_.drop <= 1,
             "FaultPlan: drop ", plan_.drop, " outside [0,1]");
    OS_CHECK(plan_.duplicate >= 0 && plan_.duplicate <= 1,
             "FaultPlan: duplicate ", plan_.duplicate,
             " outside [0,1]");
    OS_CHECK(plan_.delayJitter >= 0,
             "FaultPlan: negative delayJitter");
    for (const auto &lf : plan_.links) {
        OS_CHECK(lf.drop >= 0 && lf.drop <= 1,
                 "FaultPlan: link drop outside [0,1]");
        linkDrop_[{lf.from, lf.to}] = lf.drop;
    }
    for (const auto &pc : plan_.partitions) {
        OS_CHECK(pc.healAt >= pc.splitAt,
                 "FaultPlan: partition heals before it splits");
    }
}

FaultInjector::~FaultInjector()
{
    disarm();
    for (EventId ev : cycleEvents_)
        sim_.cancel(ev); // cancel-after-fire is a no-op
}

void
FaultInjector::arm()
{
    if (armed_)
        return;
    armed_ = true;
    net_.setFaultInjector(this);

    // Partition cycles: each uses its own partition id so overlapping
    // cycles stay distinguishable; heal merges the group back into
    // the default partition.
    for (std::size_t i = 0; i < plan_.partitions.size(); i++) {
        const auto &pc = plan_.partitions[i];
        int pid = static_cast<int>(i) + 1;
        cycleEvents_.push_back(
            sim_.scheduleAt(pc.splitAt, [this, i, pid]() {
                for (NodeId n : plan_.partitions[i].groupA)
                    net_.setPartition(n, pid);
            }));
        cycleEvents_.push_back(sim_.scheduleAt(
            pc.healAt, [this, pid]() { net_.heal(0, pid); }));
    }
}

void
FaultInjector::disarm()
{
    if (!armed_)
        return;
    armed_ = false;
    net_.setFaultInjector(nullptr);
}

void
FaultInjector::mix(std::uint64_t v)
{
    for (int i = 0; i < 8; i++) {
        trace_ ^= (v >> (8 * i)) & 0xff;
        trace_ *= 1099511628211ull;
    }
}

FaultInjector::Verdict
FaultInjector::onSend(NodeId from, NodeId to, std::size_t bytes)
{
    inspected_++;
    Verdict v;
    FaultMetricIds &fm = faultMetrics();
    fm.reg->inc(fm.inspected);

    double drop = plan_.drop;
    if (!linkDrop_.empty()) {
        auto it = linkDrop_.find({from, to});
        if (it != linkDrop_.end())
            drop = it->second;
    }
    if (drop > 0 && rng_.chance(drop)) {
        v.drop = true;
        dropped_++;
        fm.reg->inc(fm.dropped);
    } else {
        if (plan_.duplicate > 0 && rng_.chance(plan_.duplicate)) {
            v.duplicate = true;
            duplicated_++;
            fm.reg->inc(fm.duplicated);
        }
        if (plan_.delayJitter > 0) {
            v.extraDelay = rng_.uniform(0.0, plan_.delayJitter);
            delayed_++;
            fm.reg->inc(fm.delayed);
        }
    }

    mix(from);
    mix(to);
    mix(bytes);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v.extraDelay));
    __builtin_memcpy(&bits, &v.extraDelay, sizeof(bits));
    mix((v.drop ? 1u : 0u) | (v.duplicate ? 2u : 0u));
    mix(bits);
    return v;
}

} // namespace oceanstore
