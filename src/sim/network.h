/**
 * @file
 * Simulated wide-area network.
 *
 * Models point-to-point IP delivery between simulated nodes: latency
 * derived from geometric node positions (plus a per-message jitter and
 * a bandwidth term), byte accounting for every link crossing, message
 * drops, node failures and network partitions.  The OceanStore routing
 * layer (Section 4.3) runs *on top of* this, exactly as the paper's
 * layer runs on top of IP.
 *
 * Hot path (DESIGN.md section 9): in-flight messages live in a pooled
 * store — the scheduled delivery closure captures only (pool index,
 * destination), which fits the simulator's inline EventFn buffer, so
 * a send costs no closure heap allocation.  multicast() ships one
 * payload to many destinations through a single reference-counted
 * pool slot instead of one deep Message copy per receiver.
 */

#ifndef OCEANSTORE_SIM_NETWORK_H
#define OCEANSTORE_SIM_NETWORK_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/message.h"
#include "sim/simulator.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/stats.h"

namespace oceanstore {

class FaultInjector;

/** Interface every simulated protocol endpoint implements. */
class SimNode
{
  public:
    virtual ~SimNode() = default;

    /**
     * Deliver a message sent to this node.  The reference is only
     * valid for the duration of the call (multicast receivers share
     * one pooled payload); copy whatever must outlive it.
     */
    virtual void handleMessage(const Message &msg) = 0;
};

/** Tunables for the network model. */
struct NetworkConfig
{
    /** Fixed per-message one-way latency floor, seconds. */
    double baseLatency = 0.005;
    /** Extra latency per unit of geometric distance, seconds. */
    double latencyPerUnit = 0.100;
    /** Link bandwidth in bytes/second (0 = infinite). */
    double bandwidth = 10e6;
    /** Fractional latency jitter (uniform +/-). */
    double jitter = 0.05;
    /** Probability an individual message is silently dropped. */
    double dropRate = 0.0;
    /** Seed for jitter/drop randomness. */
    std::uint64_t seed = 0x6e657477u;
};

/**
 * The simulated network: node registry, positions, delivery and
 * accounting.
 */
class Network
{
  public:
    Network(Simulator &sim, NetworkConfig cfg = {});

    /**
     * Register a node at geometric position (x, y) in the unit square.
     * The caller retains ownership of @p node.
     */
    NodeId addNode(SimNode *node, double x, double y);

    /**
     * Detach @p id's endpoint: the slot stays allocated (ids are
     * stable) but messages arriving for it are dropped like arrivals
     * at a downed node.  Call from the destructor of any SimNode
     * that can die before the network — in-flight deliveries hold
     * the id, not the pointer, and must not touch a freed endpoint.
     */
    void removeNode(NodeId id);

    /** Number of registered nodes. */
    std::size_t size() const { return nodes_.size(); }

    /**
     * Send @p msg from @p from to @p to.  Delivery is scheduled after
     * the link latency; bytes are counted even if the destination is
     * down on arrival (the sender cannot know).  Messages to downed or
     * partitioned-away destinations are dropped at arrival time.
     */
    void send(NodeId from, NodeId to, Message msg);

    /**
     * Send one message from @p from to every node in @p tos — the
     * batched fan-out path for protocol broadcast/tree-push.
     * Semantically identical to a send() per destination (per-link
     * byte accounting, per-destination jitter/drop/liveness), but the
     * payload is stored once and shared by reference across all
     * deliveries instead of deep-copied per receiver.
     */
    void multicast(NodeId from, const std::vector<NodeId> &tos,
                   Message msg);

    /** One-way latency between two nodes, without jitter or bandwidth. */
    double latency(NodeId a, NodeId b) const;

    /** Euclidean distance between two node positions. */
    double distance(NodeId a, NodeId b) const;

    /** Position accessors. */
    double xOf(NodeId n) const { return pos_[n].first; }
    double yOf(NodeId n) const { return pos_[n].second; }

    /** Mark a node crashed; it silently loses all arriving messages. */
    void setDown(NodeId n);

    /** Bring a crashed node back. */
    void setUp(NodeId n);

    /** True when the node is up. */
    bool isUp(NodeId n) const { return up_[n]; }

    /**
     * Assign a partition id to a node.  Messages are only delivered
     * between nodes in the same partition.  Default partition is 0.
     */
    void setPartition(NodeId n, int partition);

    /** Remove all partitions (everyone back to partition 0). */
    void healPartitions();

    /**
     * Heal the split between two partitions: every node in partition
     * @p b moves to partition @p a, so traffic flows between the two
     * groups again.  Other partitions are untouched.
     */
    void heal(int a, int b);

    /** Remove all partitions; alias of healPartitions(). */
    void healAll() { healPartitions(); }

    /** Set the global message drop probability. */
    void setDropRate(double p) { cfg_.dropRate = p; }

    /**
     * Attach (or with nullptr detach) a fault injector consulted for
     * every transmission whose sender is alive.  When none is
     * attached the send path pays exactly one null check.
     */
    void setFaultInjector(FaultInjector *f) { fault_ = f; }

    /** The attached fault injector (nullptr when faults are off). */
    FaultInjector *faultInjector() const { return fault_; }

    /** Total payload+header bytes sent so far. */
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Total messages sent so far. */
    std::uint64_t totalMessages() const { return totalMessages_; }

    /** In-flight messages (scheduled, not yet delivered or dropped). */
    std::size_t
    inFlight() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return inFlight_;
    }

    /** Reset the byte/message counters (not node state). */
    void resetCounters();

    /** Per-message-type byte counters, for protocol cost breakdowns. */
    const Counters &byteCounters() const { return byType_; }

    /** The simulator driving this network. */
    Simulator &sim() { return sim_; }

  private:
    /** One pooled in-flight payload, shared by @c refs deliveries. */
    struct Flight
    {
        Message msg;
        std::uint32_t refs = 0;
    };

    std::uint32_t allocFlight(Message &&msg) OS_EXCLUDES(mu_);
    void releaseFlight(std::uint32_t flight) OS_EXCLUDES(mu_);
    /** Add one delivery reference to a pooled flight. */
    void pinFlight(std::uint32_t flight) OS_EXCLUDES(mu_);
    /** The pooled payload of @p flight.  The reference stays valid
     *  across reentrant sends (deque slots are stable) and is only
     *  mutated once the last reference is released. */
    const Message &flightMsg(std::uint32_t flight) const
        OS_EXCLUDES(mu_);
    /** Jitter/bandwidth-adjusted delivery latency; consumes rng. */
    double deliveryLatency(NodeId from, NodeId to, std::size_t bytes);
    void scheduleDelivery(std::uint32_t flight, NodeId to, double lat);
    void deliver(std::uint32_t flight, NodeId to);

    Simulator &sim_;
    NetworkConfig cfg_;
    Rng rng_;
    FaultInjector *fault_ = nullptr;
    std::vector<SimNode *> nodes_;
    std::vector<std::pair<double, double>> pos_;
    std::vector<bool> up_;
    std::vector<int> partition_;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t totalMessages_ = 0;

    /** Guards the pooled flight store (Runtime-seam prep); no-op
     *  until OCEANSTORE_THREADED. */
    mutable Mutex mu_;

    std::size_t inFlight_ OS_GUARDED_BY(mu_) = 0;
    /** deque: references into flights_ stay valid while handlers
     *  reentrantly send (and thus allocate) new flights. */
    std::deque<Flight> flights_ OS_GUARDED_BY(mu_);
    std::vector<std::uint32_t> freeFlights_ OS_GUARDED_BY(mu_);
    Counters byType_;
};

} // namespace oceanstore

#endif // OCEANSTORE_SIM_NETWORK_H
