/**
 * @file
 * Adversarial message-level fault injection.
 *
 * The paper's substrate is "untrusted infrastructure" in a "constant
 * state of flux" (Sections 1, 4.7): links lose, duplicate and delay
 * messages, and partitions open and heal.  The FaultInjector applies
 * exactly those faults to Network::send/multicast from a declarative
 * FaultPlan — seeded, so every chaos scenario replays bit-for-bit
 * under the trace-hash discipline (DESIGN.md section 8), and
 * zero-cost when no injector is attached (a single null pointer check
 * on the send path).
 *
 * The injector also folds every routed send decision into an FNV-1a
 * trace hash, giving chaos tests an order-sensitive fingerprint of
 * the full message stream without instrumenting protocol nodes.
 */

#ifndef OCEANSTORE_SIM_FAULT_H
#define OCEANSTORE_SIM_FAULT_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/message.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace oceanstore {

/** Declarative description of the faults to inject. */
struct FaultPlan
{
    /** Probability an individual message is silently dropped. */
    double drop = 0.0;
    /** Probability a delivered message arrives twice. */
    double duplicate = 0.0;
    /** Extra delivery delay: uniform in [0, delayJitter] seconds. */
    double delayJitter = 0.0;

    /** Per-link drop override (applies instead of the global rate). */
    struct LinkFault
    {
        NodeId from = invalidNode;
        NodeId to = invalidNode;
        double drop = 0.0;
    };
    std::vector<LinkFault> links;

    /** One scheduled partition/heal cycle: at splitAt the nodes in
     *  @c groupA are split away from everyone else; at healAt the
     *  partition is merged back. */
    struct PartitionCycle
    {
        double splitAt = 0.0;
        double healAt = 0.0;
        std::vector<NodeId> groupA;
    };
    std::vector<PartitionCycle> partitions;

    /** Seed for every drop/duplicate/delay decision. */
    std::uint64_t seed = 0xfa017u;

    /** True when any per-message fault can fire. */
    bool
    anyMessageFaults() const
    {
        return drop > 0 || duplicate > 0 || delayJitter > 0 ||
               !links.empty();
    }
};

/**
 * Applies a FaultPlan to a Network.  Construct, then arm(): the
 * injector attaches itself to the network's send path and schedules
 * the plan's partition/heal cycles on the simulator.
 */
class FaultInjector
{
  public:
    /** Per-message decision returned to the network. */
    struct Verdict
    {
        bool drop = false;
        bool duplicate = false;
        double extraDelay = 0.0;
    };

    FaultInjector(Simulator &sim, Network &net, FaultPlan plan);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Attach to the network and schedule partition cycles. */
    void arm();

    /** Detach from the network (scheduled partitions still fire;
     *  only destruction cancels them). */
    void disarm();

    /**
     * Consulted by Network for every (sender-alive) transmission.
     * Deterministic: one seeded rng drives every decision, and each
     * call folds (from, to, bytes, verdict) into the trace hash.
     */
    Verdict onSend(NodeId from, NodeId to, std::size_t bytes);

    /** Messages dropped by the injector. */
    std::uint64_t dropped() const { return dropped_; }

    /** Messages duplicated by the injector. */
    std::uint64_t duplicated() const { return duplicated_; }

    /** Messages given extra delay. */
    std::uint64_t delayed() const { return delayed_; }

    /** Sends inspected (fault decisions made). */
    std::uint64_t inspected() const { return inspected_; }

    /** Order-sensitive FNV-1a hash over every send decision. */
    std::uint64_t traceHash() const { return trace_; }

    /** The plan in force. */
    const FaultPlan &plan() const { return plan_; }

  private:
    void mix(std::uint64_t v);

    Simulator &sim_;
    Network &net_;
    FaultPlan plan_;
    Rng rng_;
    bool armed_ = false;
    /** Pending partition/heal events: the destructor cancels these so
     *  a dead injector's closures can never fire. */
    std::vector<EventId> cycleEvents_;
    /** (from, to) -> drop override, built from plan.links. */
    std::map<std::pair<NodeId, NodeId>, double> linkDrop_;
    std::uint64_t dropped_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t delayed_ = 0;
    std::uint64_t inspected_ = 0;
    std::uint64_t trace_ = 1469598103934665603ull;
};

} // namespace oceanstore

#endif // OCEANSTORE_SIM_FAULT_H
