/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Substitution (documented in DESIGN.md): the paper envisioned a
 * planet-wide deployment of millions of servers; every quantitative
 * claim it makes (message counts, byte costs, hop counts, phase
 * latencies) is a property of protocol structure.  We therefore run
 * all OceanStore protocols above a deterministic discrete-event
 * simulator instead of a real WAN.
 *
 * Determinism contract (enforced by self-audit checks in step()):
 *  - simulated time never moves backwards;
 *  - events at the same timestamp fire in scheduling order (FIFO
 *    tie-break on the monotonically increasing EventId);
 *  - cancellation bookkeeping never leaks: when the queue drains,
 *    every cancel() tombstone must have been consumed.
 */

#ifndef OCEANSTORE_SIM_SIMULATOR_H
#define OCEANSTORE_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace oceanstore {

/** Simulated time, in seconds. */
using SimTime = double;

/** Handle for a scheduled event, usable with Simulator::cancel(). */
using EventId = std::uint64_t;

/**
 * The event queue and simulated clock.
 *
 * Events scheduled at the same timestamp fire in scheduling order
 * (FIFO tie-break), which keeps runs bit-for-bit reproducible.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn to run @p delay seconds from now.
     * @return an id usable with cancel().
     */
    EventId schedule(SimTime delay, std::function<void()> fn);

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId scheduleAt(SimTime when, std::function<void()> fn);

    /**
     * Cancel a pending event; no-op if already fired, already
     * cancelled, or never scheduled.
     */
    void cancel(EventId id);

    /** Run one event.  @return false when the queue is empty. */
    bool step();

    /** Run until the queue drains. */
    void run();

    /** Run until the queue drains or the clock passes @p until. */
    void runUntil(SimTime until);

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Number of events currently pending (scheduled, not yet fired
     *  or cancelled). */
    std::size_t pending() const { return pendingIds_.size(); }

    /** Cancellation tombstones not yet swept from the queue. */
    std::size_t cancelTombstones() const { return cancelled_.size(); }

    /**
     * Self-audit: verify cancellation bookkeeping is fully drained.
     * Called automatically whenever the queue empties; aborts on a
     * leaked tombstone (an internal accounting bug).
     */
    void auditDrained() const;

  private:
    struct Entry
    {
        SimTime when;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    SimTime now_ = 0.0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        queue_;
    /** Ids scheduled but not yet fired or cancelled. */
    std::unordered_set<EventId> pendingIds_;
    /** Cancelled ids whose queue entries have not been popped yet. */
    std::unordered_set<EventId> cancelled_;
    /** Timestamp/id of the last event fired (FIFO tie-break audit). */
    SimTime lastFiredWhen_ = 0.0;
    EventId lastFiredId_ = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_SIM_SIMULATOR_H
