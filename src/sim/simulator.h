/**
 * @file
 * Discrete-event simulation kernel.
 *
 * Substitution (documented in DESIGN.md): the paper envisioned a
 * planet-wide deployment of millions of servers; every quantitative
 * claim it makes (message counts, byte costs, hop counts, phase
 * latencies) is a property of protocol structure.  We therefore run
 * all OceanStore protocols above a deterministic discrete-event
 * simulator instead of a real WAN.
 *
 * Implementation (DESIGN.md section 9): events live in a pool of
 * reusable slots; the priority queue orders 24-byte POD handles
 * (when, seq, slot) instead of closures, and cancellation is O(1)
 * generation-count bookkeeping — a cancelled slot is reclaimed
 * immediately and its queue entry is recognized as stale by sequence
 * mismatch when popped, so there is no tombstone set and no scan.
 *
 * Determinism contract (enforced by self-audit checks in step()):
 *  - simulated time never moves backwards;
 *  - events at the same timestamp fire in scheduling order (FIFO
 *    tie-break on the monotonically increasing sequence number);
 *  - cancellation bookkeeping never leaks: when the queue drains,
 *    every stale queue entry must have been consumed and every pool
 *    slot reclaimed.
 */

#ifndef OCEANSTORE_SIM_SIMULATOR_H
#define OCEANSTORE_SIM_SIMULATOR_H

#include <cstdint>
#include <queue>
#include <vector>

#include "obs/trace.h"
#include "sim/event_fn.h"
#include "util/mutex.h"

namespace oceanstore {

/** Simulated time, in seconds. */
using SimTime = double;

/**
 * Handle for a scheduled event, usable with Simulator::cancel().
 * Encodes (pool slot, slot generation); the zero value is never a
 * live event.  Stale handles — fired, cancelled, never scheduled, or
 * whose slot was since reused — are recognized and ignored.
 */
using EventId = std::uint64_t;

/** Sentinel EventId that never names a live event. */
constexpr EventId invalidEventId = 0;

/**
 * The event queue and simulated clock.
 *
 * Events scheduled at the same timestamp fire in scheduling order
 * (FIFO tie-break), which keeps runs bit-for-bit reproducible.
 *
 * Thread contract (Runtime-seam prep, DESIGN.md section 12): the
 * pooled event store and the clock are guarded by mu_ — a no-op lock
 * in the sim build, checked by the clang -Wthread-safety build.  The
 * lock is never held across a callback: step() pops and reclaims
 * under the lock, then fires with it released, so handlers are free
 * to reschedule (and, later, other threads free to schedule into a
 * running loop).
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time. */
    SimTime
    now() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return now_;
    }

    /**
     * Schedule @p fn to run @p delay seconds from now.
     * @return an id usable with cancel().
     */
    EventId schedule(SimTime delay, EventFn fn) OS_EXCLUDES(mu_);

    /** Schedule @p fn at absolute time @p when (>= now). */
    EventId scheduleAt(SimTime when, EventFn fn) OS_EXCLUDES(mu_);

    /**
     * Cancel a pending event; no-op if already fired, already
     * cancelled, or never scheduled.  O(1): the slot is reclaimed and
     * its captures released immediately.
     */
    void cancel(EventId id) OS_EXCLUDES(mu_);

    /** Run one event.  @return false when the queue is empty. */
    bool step() OS_EXCLUDES(mu_);

    /** Run until the queue drains. */
    void run();

    /** Run until the queue drains or the clock passes @p until. */
    void runUntil(SimTime until) OS_EXCLUDES(mu_);

    /** Number of events executed so far. */
    std::uint64_t
    eventsExecuted() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return executed_;
    }

    /** Number of events currently pending (scheduled, not yet fired
     *  or cancelled). */
    std::size_t
    pending() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return pending_;
    }

    /** Stale queue entries left by cancel(), not yet popped.  (The
     *  slots themselves are already reclaimed; this counts only the
     *  24-byte heap handles awaiting their turn at the queue head.) */
    std::size_t
    cancelTombstones() const OS_EXCLUDES(mu_)
    {
        MutexLock lock(mu_);
        return staleEntries_;
    }

    /** Reserve pool and queue capacity for @p n in-flight events. */
    void reserve(std::size_t n) OS_EXCLUDES(mu_);

    /**
     * Self-audit: verify cancellation bookkeeping is fully drained.
     * Called automatically whenever the queue empties; aborts on a
     * leaked stale entry or an unreclaimed slot (an internal
     * accounting bug).
     */
    void auditDrained() const OS_EXCLUDES(mu_);

  private:
    /** One pooled event.  A slot is live between schedule() and
     *  fire/cancel; its generation increments on every reclaim so
     *  stale EventIds can never touch a reused slot. */
    struct Slot
    {
        EventFn fn;
        SimTime when = 0.0;
        SimTime scheduledAt = 0.0; //!< Clock reading at schedule time.
        std::uint64_t seq = 0;  //!< Global schedule order; never reused.
        std::uint32_t gen = 1;  //!< Bumped when the slot is reclaimed.
        bool armed = false;     //!< Live (scheduled, not fired/cancelled).
        /** Ambient causal context captured at schedule time: timers
         *  fired later re-enter the trace of the code that armed
         *  them (retry trees).  Zero when tracing is detached. */
        TraceContext ctx;
        /** Ambient profiler phase label captured at schedule time. */
        std::uint16_t label = 0;
    };

    /** Priority-queue entry: POD handle into the pool. */
    struct QueueEntry
    {
        SimTime when;
        std::uint64_t seq;
        std::uint32_t slot;

        bool
        operator>(const QueueEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    static EventId
    packId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    EventId scheduleAtLocked(SimTime when, EventFn fn)
        OS_REQUIRES(mu_);
    std::uint32_t allocSlotLocked() OS_REQUIRES(mu_);
    void reclaimSlotLocked(std::uint32_t slot) OS_REQUIRES(mu_);
    void auditDrainedLocked() const OS_REQUIRES(mu_);

    /** Guards the clock and the pooled event store; no-op until
     *  OCEANSTORE_THREADED. */
    mutable Mutex mu_;

    SimTime now_ OS_GUARDED_BY(mu_) = 0.0;
    std::uint64_t nextSeq_ OS_GUARDED_BY(mu_) = 1;
    std::uint64_t executed_ OS_GUARDED_BY(mu_) = 0;
    std::size_t pending_ OS_GUARDED_BY(mu_) = 0;
    std::size_t staleEntries_ OS_GUARDED_BY(mu_) = 0;
    std::vector<Slot> pool_ OS_GUARDED_BY(mu_);
    std::vector<std::uint32_t> freeSlots_ OS_GUARDED_BY(mu_);
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue_ OS_GUARDED_BY(mu_);
    /** Timestamp/seq of the last event fired (FIFO tie-break audit). */
    SimTime lastFiredWhen_ OS_GUARDED_BY(mu_) = 0.0;
    std::uint64_t lastFiredSeq_ OS_GUARDED_BY(mu_) = 0;
};

} // namespace oceanstore

#endif // OCEANSTORE_SIM_SIMULATOR_H
