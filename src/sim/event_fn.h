/**
 * @file
 * Small-buffer-optimized callable for simulator events.
 *
 * Every message delivery, timer and protocol callback in the
 * simulator is one heap-scheduled closure; with std::function each of
 * those costs a heap allocation once captures exceed the (small,
 * implementation-defined) inline buffer.  EventFn guarantees 48 bytes
 * of inline storage — enough for every closure the hot paths create
 * (network deliveries capture a pool index, timers capture `this`
 * plus an id) — and falls back to the heap only for oversized
 * captures.  Move-only, so captured state is never duplicated.
 */

#ifndef OCEANSTORE_SIM_EVENT_FN_H
#define OCEANSTORE_SIM_EVENT_FN_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace oceanstore {

/** Move-only type-erased void() callable with inline small-buffer
 *  storage (see file comment). */
class EventFn
{
  public:
    /** Captures at or below this size (and alignment) stay inline. */
    static constexpr std::size_t inlineSize = 48;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            vt_ = &inlineVTable<Fn>;
        } else {
            *reinterpret_cast<void **>(buf_) =
                new Fn(std::forward<F>(f));
            vt_ = &heapVTable<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return vt_ != nullptr; }

    /** Invoke the callable (must hold one). */
    void operator()() { vt_->call(buf_); }

    /** Drop the held callable (release captures). */
    void
    reset()
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

  private:
    struct VTable
    {
        void (*call)(void *buf);
        void (*moveTo)(void *src_buf, void *dst_buf) /*noexcept*/;
        void (*destroy)(void *buf);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr VTable inlineVTable = {
        [](void *buf) { (*std::launder(reinterpret_cast<Fn *>(buf)))(); },
        [](void *src, void *dst) {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *buf) {
            std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr VTable heapVTable = {
        [](void *buf) { (**reinterpret_cast<Fn **>(buf))(); },
        [](void *src, void *dst) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *buf) { delete *reinterpret_cast<Fn **>(buf); },
    };

    void
    moveFrom(EventFn &o) noexcept
    {
        if (o.vt_) {
            vt_ = o.vt_;
            vt_->moveTo(o.buf_, buf_);
            o.vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineSize];
    const VTable *vt_ = nullptr;
};

} // namespace oceanstore

#endif // OCEANSTORE_SIM_EVENT_FN_H
