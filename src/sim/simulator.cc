#include "sim/simulator.h"

#include <cmath>

#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

EventId
Simulator::schedule(SimTime delay, std::function<void()> fn)
{
    if (delay < 0)
        fatal("Simulator::schedule: negative delay");
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(SimTime when, std::function<void()> fn)
{
    if (std::isnan(when))
        fatal("Simulator::scheduleAt: NaN time");
    if (when < now_)
        fatal("Simulator::scheduleAt: time in the past");
    EventId id = nextId_++;
    queue_.push(Entry{when, id, std::move(fn)});
    pendingIds_.insert(id);
    return id;
}

void
Simulator::cancel(EventId id)
{
    // Only events that are still pending get a tombstone; cancelling
    // a fired, cancelled, or unknown id is a documented no-op.  (The
    // pending-set lookup is what keeps tombstones from leaking and
    // pending() from under-counting.)
    auto it = pendingIds_.find(id);
    if (it == pendingIds_.end())
        return;
    pendingIds_.erase(it);
    cancelled_.insert(id);
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        // Self-audit: the clock never moves backwards, and events at
        // equal timestamps fire in scheduling (id) order.
        OS_CHECK(e.when >= now_, "event ", e.id, " at t=", e.when,
                 " fired with clock at t=", now_);
        OS_CHECK(e.when > lastFiredWhen_ || e.id > lastFiredId_,
                 "FIFO tie-break violated: event ", e.id, " after ",
                 lastFiredId_, " at t=", e.when);
        lastFiredWhen_ = e.when;
        lastFiredId_ = e.id;
        now_ = e.when;
        executed_++;
        pendingIds_.erase(e.id);
        e.fn();
        return true;
    }
    auditDrained();
    return false;
}

void
Simulator::run()
{
    while (step()) {
    }
}

void
Simulator::runUntil(SimTime until)
{
    for (;;) {
        // Drop cancelled entries so the time check below sees the next
        // event that will actually fire.
        while (!queue_.empty() && cancelled_.count(queue_.top().id)) {
            cancelled_.erase(queue_.top().id);
            queue_.pop();
        }
        if (queue_.empty() || queue_.top().when > until)
            break;
        step();
    }
    if (queue_.empty())
        auditDrained();
    if (now_ < until)
        now_ = until;
}

void
Simulator::auditDrained() const
{
    // Every queue entry is accounted for in exactly one of pendingIds_
    // or cancelled_, so an empty queue must leave both empty.
    OS_CHECK(queue_.empty(),
             "auditDrained with ", queue_.size(), " queued events");
    OS_CHECK(cancelled_.empty(), "cancel-tombstone leak: ",
             cancelled_.size(), " tombstones after queue drained");
    OS_CHECK(pendingIds_.empty(), "pending-id leak: ",
             pendingIds_.size(), " ids after queue drained");
}

} // namespace oceanstore
