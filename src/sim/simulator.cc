#include "sim/simulator.h"

#include "util/logging.h"

namespace oceanstore {

EventId
Simulator::schedule(SimTime delay, std::function<void()> fn)
{
    if (delay < 0)
        fatal("Simulator::schedule: negative delay");
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(SimTime when, std::function<void()> fn)
{
    if (when < now_)
        fatal("Simulator::scheduleAt: time in the past");
    EventId id = nextId_++;
    queue_.push(Entry{when, id, std::move(fn)});
    return id;
}

void
Simulator::cancel(EventId id)
{
    cancelled_.insert(id);
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = e.when;
        executed_++;
        e.fn();
        return true;
    }
    return false;
}

void
Simulator::run()
{
    while (step()) {
    }
}

void
Simulator::runUntil(SimTime until)
{
    for (;;) {
        // Drop cancelled entries so the time check below sees the next
        // event that will actually fire.
        while (!queue_.empty() && cancelled_.count(queue_.top().id)) {
            cancelled_.erase(queue_.top().id);
            queue_.pop();
        }
        if (queue_.empty() || queue_.top().when > until)
            break;
        step();
    }
    if (now_ < until)
        now_ = until;
}

} // namespace oceanstore
