#include "sim/simulator.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/check.h"
#include "util/logging.h"

namespace oceanstore {

namespace {

/** Interned metric ids, registered once on first use. */
struct SimMetricIds
{
    MetricsRegistry *reg;
    MetricsRegistry::Id scheduled, fired, cancelled, taskDelay;

    SimMetricIds()
        : reg(&MetricsRegistry::global()),
          scheduled(reg->counter("sim.events_scheduled")),
          fired(reg->counter("sim.events_fired")),
          cancelled(reg->counter("sim.events_cancelled")),
          // Schedule->fire latency, the sim half of the runtime
          // health surface (the threaded backend feeds the same
          // histogram with wall-clock queue delays).
          taskDelay(reg->histogram("runtime.task_delay", 0.0, 2.5, 50))
    {
    }
};

SimMetricIds &
simMetrics()
{
    static SimMetricIds ids;
    return ids;
}

} // namespace

std::uint32_t
Simulator::allocSlotLocked()
{
    if (!freeSlots_.empty()) {
        std::uint32_t s = freeSlots_.back();
        freeSlots_.pop_back();
        return s;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
Simulator::reclaimSlotLocked(std::uint32_t slot)
{
    Slot &s = pool_[slot];
    s.fn.reset(); // release captures eagerly
    s.armed = false;
    s.gen++;      // invalidate every outstanding EventId for this slot
    freeSlots_.push_back(slot);
}

void
Simulator::reserve(std::size_t n)
{
    MutexLock lock(mu_);
    pool_.reserve(n);
    freeSlots_.reserve(n);
}

EventId
Simulator::schedule(SimTime delay, EventFn fn)
{
    if (delay < 0)
        fatal("Simulator::schedule: negative delay");
    MutexLock lock(mu_);
    return scheduleAtLocked(now_ + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(SimTime when, EventFn fn)
{
    MutexLock lock(mu_);
    return scheduleAtLocked(when, std::move(fn));
}

EventId
Simulator::scheduleAtLocked(SimTime when, EventFn fn)
{
    if (std::isnan(when))
        fatal("Simulator::scheduleAt: NaN time");
    if (when < now_)
        fatal("Simulator::scheduleAt: time in the past");
    std::uint32_t slot = allocSlotLocked();
    Slot &s = pool_[slot];
    s.fn = std::move(fn);
    s.when = when;
    s.scheduledAt = now_;
    s.seq = nextSeq_++;
    s.armed = true;
    // Capture the ambient observability context so the event fires
    // inside the trace/phase of the code scheduling it.  One null
    // check each when tracing/profiling are detached; the context is
    // zeroed either way so a reused slot never leaks a stale trace.
    if (const Tracer *tr = Tracer::active())
        s.ctx = tr->current();
    else
        s.ctx = TraceContext{};
    if (const PhaseProfiler *pp = PhaseProfiler::active())
        s.label = pp->currentLabel();
    else
        s.label = 0;
    SimMetricIds &m = simMetrics();
    m.reg->inc(m.scheduled);
    queue_.push(QueueEntry{when, s.seq, slot});
    pending_++;
    return packId(slot, s.gen);
}

void
Simulator::cancel(EventId id)
{
    // Only live events are cancellable; a fired, cancelled, or
    // never-scheduled id fails the generation check and is a
    // documented no-op.  The slot is reclaimed right here — O(1),
    // no tombstone set — and the queue entry it leaves behind is
    // recognized as stale by its sequence number when popped.
    std::uint32_t slot = static_cast<std::uint32_t>(id);
    std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    MutexLock lock(mu_);
    if (slot >= pool_.size())
        return;
    Slot &s = pool_[slot];
    if (s.gen != gen || !s.armed)
        return;
    reclaimSlotLocked(slot);
    pending_--;
    staleEntries_++;
    SimMetricIds &m = simMetrics();
    m.reg->inc(m.cancelled);
}

bool
Simulator::step()
{
    EventFn fn;
    TraceContext ctx;
    std::uint16_t label = 0;
    SimTime scheduledAt = 0.0;
    SimTime firedAt = 0.0;
    bool have = false;

    // Bookkeeping happens under the lock; the callback fires with it
    // released, so handlers may freely (re)schedule and cancel.
    {
        MutexLock lock(mu_);
        while (!queue_.empty()) {
            QueueEntry e = queue_.top();
            queue_.pop();
            Slot &s = pool_[e.slot];
            if (s.seq != e.seq || !s.armed) {
                // Entry of a cancelled (and possibly since-reused)
                // slot.
                staleEntries_--;
                continue;
            }
            // Self-audit: the clock never moves backwards, and events
            // at equal timestamps fire in scheduling (seq) order.
            OS_CHECK(e.when >= now_, "event seq ", e.seq,
                     " at t=", e.when, " fired with clock at t=", now_);
            OS_CHECK(e.when > lastFiredWhen_ || e.seq > lastFiredSeq_,
                     "FIFO tie-break violated: event seq ", e.seq,
                     " after ", lastFiredSeq_, " at t=", e.when);
            lastFiredWhen_ = e.when;
            lastFiredSeq_ = e.seq;
            now_ = e.when;
            executed_++;
            pending_--;
            // Move the callback out and reclaim the slot *before*
            // firing: the handler may cancel its own id (a no-op by
            // then) or schedule new events that reuse the slot.
            fn = std::move(s.fn);
            ctx = s.ctx;
            label = s.label;
            scheduledAt = s.scheduledAt;
            firedAt = e.when;
            reclaimSlotLocked(e.slot);
            have = true;
            break;
        }
        if (!have)
            auditDrainedLocked();
    }
    if (!have)
        return false;

    SimMetricIds &m = simMetrics();
    m.reg->inc(m.fired);
    m.reg->observe(m.taskDelay, firedAt - scheduledAt);
    // Restore the scheduling code's observability context around the
    // callback, so everything it does (sends, new timers) stays
    // causally linked and phase-attributed.
    Tracer *tr = Tracer::active();
    if (tr)
        tr->setCurrent(ctx);
    PhaseProfiler *pp = PhaseProfiler::active();
    if (pp) {
        pp->onEventFired(label, firedAt - scheduledAt);
        pp->setCurrent(label);
    }
    fn();
    if (tr)
        tr->clearCurrent();
    if (pp)
        pp->setCurrent(0);
    return true;
}

void
Simulator::run()
{
    while (step()) {
    }
}

void
Simulator::runUntil(SimTime until)
{
    for (;;) {
        bool fire;
        {
            MutexLock lock(mu_);
            // Drop stale entries so the time check below sees the
            // next event that will actually fire.
            while (!queue_.empty()) {
                const QueueEntry &top = queue_.top();
                const Slot &s = pool_[top.slot];
                if (s.seq == top.seq && s.armed)
                    break;
                staleEntries_--;
                queue_.pop();
            }
            fire = !queue_.empty() && queue_.top().when <= until;
        }
        if (!fire)
            break;
        step();
    }
    MutexLock lock(mu_);
    if (queue_.empty())
        auditDrainedLocked();
    if (now_ < until)
        now_ = until;
}

void
Simulator::auditDrained() const
{
    MutexLock lock(mu_);
    auditDrainedLocked();
}

void
Simulator::auditDrainedLocked() const
{
    // Every queue entry maps to exactly one live or stale slot state,
    // so an empty queue must leave no pending events, no stale
    // entries, and every pool slot reclaimed.
    OS_CHECK(queue_.empty(),
             "auditDrained with ", queue_.size(), " queued events");
    OS_CHECK(staleEntries_ == 0, "stale-entry leak: ", staleEntries_,
             " cancelled entries after queue drained");
    OS_CHECK(pending_ == 0, "pending-event leak: ", pending_,
             " events after queue drained");
    OS_CHECK(freeSlots_.size() == pool_.size(), "slot leak: ",
             pool_.size() - freeSlots_.size(),
             " unreclaimed slots after queue drained");
}

} // namespace oceanstore
