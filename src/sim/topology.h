/**
 * @file
 * Overlay topology generation.
 *
 * The probabilistic location algorithm (Section 4.3.2) runs over an
 * explicit neighbor graph — attenuated Bloom filters are stored per
 * directed edge — while the Plaxton mesh chooses neighbors by network
 * proximity.  This header generates both: geometric node placements in
 * the unit square (from which the Network derives IP latency) and
 * overlay adjacency structures.
 */

#ifndef OCEANSTORE_SIM_TOPOLOGY_H
#define OCEANSTORE_SIM_TOPOLOGY_H

#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "util/random.h"

namespace oceanstore {

/** Node placements plus an undirected overlay adjacency. */
struct Topology
{
    /** (x, y) positions in the unit square, indexed by NodeId. */
    std::vector<std::pair<double, double>> positions;

    /** adjacency[n] = sorted neighbor list of node n. */
    std::vector<std::vector<NodeId>> adjacency;

    /** Number of nodes. */
    std::size_t size() const { return positions.size(); }

    /**
     * Hop distances from @p from to every node via BFS over the
     * adjacency (unreachable = -1).
     */
    std::vector<int> hopDistances(NodeId from) const;

    /** True when the overlay is a single connected component. */
    bool connected() const;

    /** Add an undirected edge (idempotent). */
    void addEdge(NodeId a, NodeId b);
};

/**
 * Random geometric overlay: @p n nodes uniform in the unit square,
 * each connected to its @p k nearest neighbors (union of directed
 * choices, so degree may exceed k).  Extra random long edges are added
 * if needed until the graph is connected.
 */
Topology makeGeometricTopology(std::size_t n, unsigned k, Rng &rng);

/**
 * Transit-stub-like overlay: @p transits well-connected core nodes,
 * each with @p stubs_per_transit stub domains of
 * @p nodes_per_stub nodes.  Stub domains are geometrically tight, the
 * transit core spans the square — a coarse model of the paper's
 * "high-bandwidth, high-connectivity regions" hosting primary tiers.
 */
Topology makeTransitStubTopology(std::size_t transits,
                                 std::size_t stubs_per_transit,
                                 std::size_t nodes_per_stub, Rng &rng);

/**
 * Ring lattice of degree 2*@p k with probability @p beta shortcut
 * rewiring (Watts-Strogatz style small world).  Positions on a circle.
 */
Topology makeSmallWorldTopology(std::size_t n, unsigned k, double beta,
                                Rng &rng);

/**
 * Partition nodes into @p grid x @p grid geographic regions by their
 * unit-square position: region = cell column + grid * cell row.
 * Positions outside [0, 1) clamp to the border cells.  Workload
 * generators use regions to correlate session arrival (diurnal phase
 * per region) with network locality.
 */
std::vector<unsigned> assignGridRegions(const Topology &topo,
                                        unsigned grid);

} // namespace oceanstore

#endif // OCEANSTORE_SIM_TOPOLOGY_H
