/**
 * @file
 * Failure injection and churn generation.
 *
 * Drives the failure model the paper's self-maintenance mechanisms
 * respond to: "Servers and devices will connect, disconnect, and fail
 * sporadically" (Section 4.7).  The injector schedules crash/recover
 * cycles with exponential holding times, plus one-shot mass-failure
 * events for the deep-archival experiments.
 */

#ifndef OCEANSTORE_SIM_CHURN_H
#define OCEANSTORE_SIM_CHURN_H

#include <functional>
#include <map>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace oceanstore {

/** Configuration for continuous churn. */
struct ChurnConfig
{
    double meanUptime = 600.0;   //!< Mean seconds a node stays up.
    double meanDowntime = 60.0;  //!< Mean seconds a node stays down.
    std::uint64_t seed = 0x43485255u;
};

/**
 * Node crash/restart lifecycle (DESIGN.md section 14).
 *
 * Implemented by the system owner (core::Universe) so failure
 * injectors tear a node down and bring it back through ONE symmetric
 * path — network link state, durable storage teardown (disk-fault
 * application, backend destruction) and recovery replay all happen
 * together, never leaving a stale storage handle behind a node the
 * network already considers dead.  shutdown() must leave the node
 * down (Network::setDown or equivalent); restart() must bring it up.
 */
class NodeLifecycle
{
  public:
    virtual ~NodeLifecycle() = default;

    /** Tear @p n down: network down + storage crash. */
    virtual void shutdown(NodeId n) = 0;

    /** Bring @p n back: storage recovery + network up. */
    virtual void restart(NodeId n) = 0;
};

/**
 * Continuous churn process over a set of nodes.
 *
 * Each managed node alternates up/down with exponential holding
 * times.  Optional callbacks notify protocol layers (e.g. the Plaxton
 * mesh repair machinery) of transitions.
 */
class ChurnInjector
{
  public:
    ChurnInjector(Simulator &sim, Network &net, ChurnConfig cfg = {});

    /** Begin churning @p nodes.  Call at most once. */
    void start(const std::vector<NodeId> &nodes);

    /** Stop churning: cancel every armed transition so no closure
     *  can fire after the injector's owner tears it down. */
    void
    stop()
    {
        running_ = false;
        for (const auto &[n, ev] : transitions_) {
            (void)n;
            sim_.cancel(ev);
        }
        transitions_.clear();
    }

    /** Invoked (if set) when a node crashes. */
    std::function<void(NodeId)> onCrash;

    /** Invoked (if set) when a node recovers. */
    std::function<void(NodeId)> onRecover;

    /**
     * When set, every transition (scheduled churn and the mass
     * helpers) routes through this lifecycle instead of raw
     * Network::setDown/setUp, so storage teardown and recovery stay
     * symmetric with link state.  onCrash/onRecover still fire after
     * the lifecycle call, exactly as before.
     */
    NodeLifecycle *lifecycle = nullptr;

    /** Crash a uniformly random @p fraction of @p nodes immediately. */
    static std::vector<NodeId>
    massFailure(Network &net, const std::vector<NodeId> &nodes,
                double fraction, Rng &rng);

    /**
     * Crash a uniformly random @p fraction of @p nodes immediately,
     * firing onCrash for each — the callback-carrying counterpart of
     * the static helper, so protocol layers (mesh repair, failure
     * detectors) observe mass-failure events exactly like ordinary
     * churn transitions.  @return the downed nodes.
     */
    std::vector<NodeId> massFailure(const std::vector<NodeId> &nodes,
                                    double fraction);

    /**
     * Symmetric recovery: bring every currently-down node in
     * @p nodes back up, firing onRecover for each.
     * @return the recovered nodes.
     */
    std::vector<NodeId> massRecover(const std::vector<NodeId> &nodes);

  private:
    void scheduleTransition(NodeId n);

    Simulator &sim_;
    Network &net_;
    ChurnConfig cfg_;
    Rng rng_;
    bool running_ = false;
    /** Node -> its armed transition event (the cancellation handles
     *  for the self-rescheduling closures; ordered for determinism). */
    std::map<NodeId, EventId> transitions_;
};

} // namespace oceanstore

#endif // OCEANSTORE_SIM_CHURN_H
