/**
 * @file
 * Protocol messages (Section 4.3.1).
 *
 * OceanStore messages are "labeled with a destination GUID, a random
 * number, and a small predicate"; the destination IP address does not
 * appear.  In the simulation a Message carries a type tag, a typed
 * body (std::any, so protocol layers exchange rich structures without
 * repeated serialization), an explicit wire size used for byte and
 * bandwidth accounting, and the GUID-level addressing fields.
 */

#ifndef OCEANSTORE_SIM_MESSAGE_H
#define OCEANSTORE_SIM_MESSAGE_H

#include <any>
#include <cstdint>
#include <string>

#include "crypto/guid.h"
#include "obs/trace.h"

namespace oceanstore {

/** Index of a node within the simulated network. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = ~0u;

/** Overhead added to every message for headers, in bytes. */
constexpr std::size_t messageHeaderBytes = 40;

/** A simulated protocol message. */
struct Message
{
    std::string type;    //!< Protocol message kind, e.g. "pbft.prepare".
    std::any body;       //!< Typed payload; layers any_cast it back.
    std::size_t wireSize = 0; //!< Payload bytes on the wire (sans header).
    NodeId src = invalidNode; //!< Sending node.
    Guid destGuid;       //!< GUID-level destination (may be invalid).
    std::uint64_t nonce = 0;  //!< The paper's "random number" label.
    TraceContext trace;  //!< Causal context (zero when untraced); set
                         //!< by the network, never serialized/costed.

    /** Total bytes this message occupies on a link. */
    std::size_t totalBytes() const { return wireSize + messageHeaderBytes; }
};

/**
 * Convenience factory for a message with a typed body.
 *
 * @param type     protocol tag
 * @param body     any copyable payload
 * @param wire_size serialized size of the payload in bytes
 */
template <typename T>
Message
makeMessage(std::string type, T body, std::size_t wire_size)
{
    Message m;
    m.type = std::move(type);
    m.body = std::move(body);
    m.wireSize = wire_size;
    return m;
}

/** Extract a message body, asserting on type mismatch. */
template <typename T>
const T &
messageBody(const Message &m)
{
    return std::any_cast<const T &>(m.body);
}

} // namespace oceanstore

#endif // OCEANSTORE_SIM_MESSAGE_H
